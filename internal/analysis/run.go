package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// DeterministicPathSuffixes lists the module-relative package trees that
// are always under the seeded-determinism contract, independent of any
// //dsps:deterministic directive — so deleting a directive cannot turn
// enforcement off for the engine, the chaos harness, or the training
// engine.
var DeterministicPathSuffixes = []string{
	"/internal/dsps",
	"/internal/chaos",
	"/internal/nn",
}

// Config parameterizes one lint run.
type Config struct {
	// Dir is the directory patterns resolve against ("" = cwd); the
	// enclosing module is discovered from it.
	Dir      string
	Patterns []string
	// Enable/Disable select analyzers by name; Enable empty = all.
	Enable  []string
	Disable []string
	// IncludeTests adds _test.go files (and external test packages).
	IncludeTests bool
	JSON         bool
	// SummaryPath, when set, writes the machine-readable baseline summary.
	SummaryPath string

	Stdout io.Writer
	Stderr io.Writer
}

// Report is the full machine-readable result of a run.
type Report struct {
	Module      string         `json:"module"`
	Analyzers   []string       `json:"analyzers"`
	Packages    int            `json:"packages"`
	Files       int            `json:"files"`
	Findings    []Diagnostic   `json:"findings"`
	Suppressed  []Diagnostic   `json:"suppressed"`
	Counts      map[string]int `json:"counts"` // unsuppressed findings per analyzer
	TypeErrors  []string       `json:"type_errors,omitempty"`
	LoadError   string         `json:"load_error,omitempty"`
	Suppression int            `json:"suppression_count"`
}

// Summary is the committed lint baseline: stable across machines (no
// absolute paths, no timestamps) so suppression creep shows up as a diff.
type Summary struct {
	Module       string         `json:"module"`
	Analyzers    []string       `json:"analyzers"`
	Packages     int            `json:"packages"`
	Files        int            `json:"files"`
	Findings     map[string]int `json:"findings"`
	Suppressions []struct {
		Analyzer string `json:"analyzer"`
		Position string `json:"position"`
		Reason   string `json:"reason"`
	} `json:"suppressions"`
	SuppressionCount int `json:"suppression_count"`
}

// Run executes the configured lint pass and returns a process exit code:
// 0 clean, 1 findings, 2 load/type/usage failure.
func Run(cfg Config) int {
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	report, err := Analyze(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "dspslint: %v\n", err)
		return 2
	}
	if cfg.JSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range report.Findings {
			fmt.Fprintf(stdout, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
		}
		fmt.Fprintf(stdout, "dspslint: %d finding(s), %d suppressed, %d package(s), %d file(s)\n",
			len(report.Findings), len(report.Suppressed), report.Packages, report.Files)
	}
	if cfg.SummaryPath != "" {
		if err := writeSummary(cfg.SummaryPath, report); err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
	}
	if len(report.TypeErrors) > 0 {
		for _, e := range report.TypeErrors {
			fmt.Fprintf(stderr, "dspslint: type error: %s\n", e)
		}
		return 2
	}
	if len(report.Findings) > 0 {
		return 1
	}
	return 0
}

// Analyze loads the requested packages and runs the selected analyzers,
// returning the full report.
func Analyze(cfg Config) (*Report, error) {
	analyzers, err := selectAnalyzers(cfg.Enable, cfg.Disable)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir, cfg.IncludeTests)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}

	report := &Report{
		Module: loader.Module,
		Counts: map[string]int{},
	}
	for _, a := range analyzers {
		report.Analyzers = append(report.Analyzers, a.Name)
		report.Counts[a.Name] = 0
	}

	var diags []Diagnostic
	var ignores []*ignoreEntry
	for _, pkg := range pkgs {
		report.Packages++
		report.Files += len(pkg.Files)
		markDeterministic(loader.Module, pkg)
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(loader.Fset, f)...)
		}
		for _, e := range pkg.TypeErrors {
			report.TypeErrors = append(report.TypeErrors, e.Error())
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:      a,
				Fset:          loader.Fset,
				Files:         pkg.Files,
				Pkg:           pkg.Types,
				Info:          pkg.Info,
				Deterministic: pkg.Deterministic,
				diags:         &diags,
			}
			a.Run(pass)
		}
	}

	// Apply suppressions and split findings.
	for i := range diags {
		d := &diags[i]
		d.Position = relPosition(loader.Root, d.Pos)
		for _, ig := range ignores {
			if ig.file == d.Pos.Filename && ig.covers(d.Analyzer, d.Pos.Line) {
				d.Suppressed = true
				d.Reason = ig.reason
				ig.used = true
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		if d.Suppressed {
			report.Suppressed = append(report.Suppressed, d)
		} else {
			report.Findings = append(report.Findings, d)
			report.Counts[d.Analyzer]++
		}
	}
	report.Suppression = len(report.Suppressed)
	if report.Findings == nil {
		report.Findings = []Diagnostic{}
	}
	if report.Suppressed == nil {
		report.Suppressed = []Diagnostic{}
	}
	return report, nil
}

// markDeterministic applies the built-in path list on top of any
// //dsps:deterministic directive the loader already honored.
func markDeterministic(module string, pkg *Package) {
	path := strings.TrimSuffix(pkg.ImportPath, "_test")
	for _, suffix := range DeterministicPathSuffixes {
		full := module + suffix
		if path == full || strings.HasPrefix(path, full+"/") {
			pkg.Deterministic = true
		}
	}
}

// selectAnalyzers resolves -enable/-disable names against the registry.
func selectAnalyzers(enable, disable []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	check := func(names []string) error {
		for _, n := range names {
			if _, ok := byName[n]; !ok {
				return fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(analyzerNames(), ", "))
			}
		}
		return nil
	}
	if err := check(enable); err != nil {
		return nil, err
	}
	if err := check(disable); err != nil {
		return nil, err
	}
	selected := map[string]bool{}
	if len(enable) == 0 {
		for name := range byName {
			selected[name] = true
		}
	} else {
		for _, n := range enable {
			selected[n] = true
		}
	}
	for _, n := range disable {
		delete(selected, n)
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

func analyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// relPosition renders a token position module-relative, stable across
// machines.
func relPosition(root string, pos token.Position) string {
	file := pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d", file, pos.Line, pos.Column)
}

// writeSummary emits the committed baseline form of a report.
func writeSummary(path string, r *Report) error {
	s := Summary{
		Module:           r.Module,
		Analyzers:        r.Analyzers,
		Packages:         r.Packages,
		Files:            r.Files,
		Findings:         r.Counts,
		SuppressionCount: len(r.Suppressed),
	}
	s.Suppressions = make([]struct {
		Analyzer string `json:"analyzer"`
		Position string `json:"position"`
		Reason   string `json:"reason"`
	}, 0, len(r.Suppressed))
	for _, d := range r.Suppressed {
		s.Suppressions = append(s.Suppressions, struct {
			Analyzer string `json:"analyzer"`
			Position string `json:"position"`
			Reason   string `json:"reason"`
		}{d.Analyzer, d.Position, d.Reason})
	}
	data, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
