package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// DeterministicPathSuffixes lists the module-relative package trees that
// are always under the seeded-determinism contract, independent of any
// //dsps:deterministic directive — so deleting a directive cannot turn
// enforcement off for the engine, the chaos harness, or the training
// engine.
var DeterministicPathSuffixes = []string{
	"/internal/dsps",
	"/internal/chaos",
	"/internal/nn",
}

// OwnedGoroutinePathSuffixes lists the module-relative package trees
// whose goroutines must carry a statically visible stop/wait path
// (goroleak), independent of any //dsps:owned-goroutines directive: the
// stream engine, the prediction server, and the observability stack all
// shut down gracefully, so an unstoppable goroutine there is a leak.
var OwnedGoroutinePathSuffixes = []string{
	"/internal/dsps",
	"/internal/serve",
	"/internal/obs",
	"/internal/cluster",
}

// Config parameterizes one lint run.
type Config struct {
	// Dir is the directory patterns resolve against ("" = cwd); the
	// enclosing module is discovered from it.
	Dir      string
	Patterns []string
	// Enable/Disable select analyzers by name; Enable empty = all.
	Enable  []string
	Disable []string
	// IncludeTests adds _test.go files (and external test packages).
	IncludeTests bool
	JSON         bool
	// SummaryPath, when set, writes the machine-readable baseline summary.
	SummaryPath string
	// BaselinePath, when set, verifies the run against a committed
	// baseline: a recorded suppression that no longer exists fails the
	// run as stale, and an unrecorded one fails it as drift.
	BaselinePath string
	// Timings prints per-analyzer wall time in text mode.
	Timings bool

	Stdout io.Writer
	Stderr io.Writer
}

// CallGraphStats summarizes the interprocedural layer for the report and
// the committed baseline.
type CallGraphStats struct {
	// Nodes counts functions with loaded declarations; Edges counts
	// resolved static call/go/defer edges (including edges to external
	// leaves); DynamicCallSites counts interface-dispatch and func-value
	// call sites the graph cannot follow — the documented blind spot.
	Nodes            int `json:"nodes"`
	Edges            int `json:"edges"`
	DynamicCallSites int `json:"dynamic_call_sites"`
}

// An AllocExemption is one //dsps:allocs function: a declared, justified
// amortized allocation point inside a hot-path call tree.
type AllocExemption struct {
	Function string `json:"function"`
	Position string `json:"position"`
	Reason   string `json:"reason"`
}

// Report is the full machine-readable result of a run.
type Report struct {
	Module          string           `json:"module"`
	Analyzers       []string         `json:"analyzers"`
	Packages        int              `json:"packages"`
	Files           int              `json:"files"`
	CallGraph       CallGraphStats   `json:"callgraph"`
	Findings        []Diagnostic     `json:"findings"`
	Suppressed      []Diagnostic     `json:"suppressed"`
	AllocExemptions []AllocExemption `json:"alloc_exemptions"`
	Counts          map[string]int   `json:"counts"` // unsuppressed findings per analyzer
	// TimingsMs records wall time per stage: "load" (parse+typecheck),
	// "callgraph" (graph build + taint propagation), and one entry per
	// analyzer.
	TimingsMs   map[string]int64 `json:"timings_ms"`
	TypeErrors  []string         `json:"type_errors,omitempty"`
	LoadError   string           `json:"load_error,omitempty"`
	Suppression int              `json:"suppression_count"`
}

// Summary is the committed lint baseline (schema v2): per-analyzer
// finding counts, call-graph size, per-stage timings, and every
// suppression and alloc exemption with its justification, so creep in
// any of them shows up as a diff. Apart from the timings (inherently
// machine-dependent, kept for trend-reading) the summary is stable
// across machines: no absolute paths, no timestamps.
type Summary struct {
	Schema           int                  `json:"schema"`
	Module           string               `json:"module"`
	Analyzers        []string             `json:"analyzers"`
	Packages         int                  `json:"packages"`
	Files            int                  `json:"files"`
	CallGraph        CallGraphStats       `json:"callgraph"`
	Findings         map[string]int       `json:"findings"`
	TimingsMs        map[string]int64     `json:"timings_ms"`
	AllocExemptions  []AllocExemption     `json:"alloc_exemptions"`
	Suppressions     []SummarySuppression `json:"suppressions"`
	SuppressionCount int                  `json:"suppression_count"`
}

// A SummarySuppression is one committed //dspslint:ignore with its
// justification and the position of the finding it covers.
type SummarySuppression struct {
	Analyzer string `json:"analyzer"`
	Position string `json:"position"`
	Reason   string `json:"reason"`
}

// Run executes the configured lint pass and returns a process exit code:
// 0 clean, 1 findings or baseline drift, 2 load/type/usage failure.
func Run(cfg Config) int {
	stdout, stderr := cfg.Stdout, cfg.Stderr
	if stdout == nil {
		stdout = os.Stdout
	}
	if stderr == nil {
		stderr = os.Stderr
	}
	report, err := Analyze(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "dspslint: %v\n", err)
		return 2
	}
	if cfg.JSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range report.Findings {
			fmt.Fprintf(stdout, "%s: %s: %s\n", d.Position, d.Analyzer, d.Message)
		}
		fmt.Fprintf(stdout, "dspslint: %d finding(s), %d suppressed, %d package(s), %d file(s), call graph %d nodes / %d edges (%d dynamic sites)\n",
			len(report.Findings), len(report.Suppressed), report.Packages, report.Files,
			report.CallGraph.Nodes, report.CallGraph.Edges, report.CallGraph.DynamicCallSites)
		if cfg.Timings {
			printTimings(stdout, report)
		}
	}
	if cfg.SummaryPath != "" {
		if err := writeSummary(cfg.SummaryPath, report); err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
	}
	if len(report.TypeErrors) > 0 {
		for _, e := range report.TypeErrors {
			fmt.Fprintf(stderr, "dspslint: type error: %s\n", e)
		}
		return 2
	}
	code := 0
	if cfg.BaselinePath != "" {
		drift, err := VerifyBaseline(cfg.BaselinePath, report)
		if err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
		for _, msg := range drift {
			fmt.Fprintf(stderr, "dspslint: %s\n", msg)
		}
		if len(drift) > 0 {
			code = 1
		}
	}
	if len(report.Findings) > 0 {
		code = 1
	}
	return code
}

// printTimings renders the per-stage wall times, load first, analyzers
// in registry order.
func printTimings(w io.Writer, r *Report) {
	fmt.Fprintf(w, "timings: load %dms, callgraph %dms\n", r.TimingsMs["load"], r.TimingsMs["callgraph"])
	for _, name := range r.Analyzers {
		fmt.Fprintf(w, "  %-12s %4dms\n", name, r.TimingsMs[name])
	}
}

// Analyze loads the requested packages, builds the module call graph,
// and runs the selected analyzers, returning the full report.
func Analyze(cfg Config) (*Report, error) {
	analyzers, err := selectAnalyzers(cfg.Enable, cfg.Disable)
	if err != nil {
		return nil, err
	}
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir, cfg.IncludeTests)
	if err != nil {
		return nil, err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	report := &Report{
		Module:    loader.Module,
		Counts:    map[string]int{},
		TimingsMs: map[string]int64{},
	}
	for _, a := range analyzers {
		report.Analyzers = append(report.Analyzers, a.Name)
		report.Counts[a.Name] = 0
	}

	loadStart := time.Now()
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return nil, err
	}
	for _, pkg := range pkgs {
		markDeterministic(loader.Module, pkg)
		markOwnedGoroutines(loader.Module, pkg)
	}
	report.TimingsMs["load"] = time.Since(loadStart).Milliseconds()

	graphStart := time.Now()
	mod := buildModule(loader, pkgs)
	report.TimingsMs["callgraph"] = time.Since(graphStart).Milliseconds()
	nodes, edges, dynamic := mod.Graph.Stats()
	report.CallGraph = CallGraphStats{Nodes: nodes, Edges: edges, DynamicCallSites: dynamic}
	report.AllocExemptions = allocExemptions(loader, mod)

	var diags []Diagnostic
	var ignores []*ignoreEntry
	for _, pkg := range pkgs {
		report.Packages++
		report.Files += len(pkg.Files)
		for _, f := range pkg.Files {
			ignores = append(ignores, parseIgnores(loader.Fset, f)...)
		}
		for _, e := range pkg.TypeErrors {
			report.TypeErrors = append(report.TypeErrors, e.Error())
		}
		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			start := time.Now()
			a.Run(&Pass{
				Analyzer:      a,
				Fset:          loader.Fset,
				Files:         pkg.Files,
				Pkg:           pkg.Types,
				Info:          pkg.Info,
				Deterministic: pkg.Deterministic,
				Mod:           mod,
				diags:         &diags,
			})
			report.TimingsMs[a.Name] += time.Since(start).Milliseconds()
		}
	}
	// Module analyzers run exactly once over the whole graph.
	for _, a := range analyzers {
		if a.RunModule == nil {
			continue
		}
		start := time.Now()
		a.RunModule(&Pass{Analyzer: a, Fset: loader.Fset, Mod: mod, diags: &diags})
		report.TimingsMs[a.Name] += time.Since(start).Milliseconds()
	}

	// Apply suppressions and split findings.
	for i := range diags {
		d := &diags[i]
		d.Position = relPosition(loader.Root, d.Pos)
		for _, ig := range ignores {
			if ig.file == d.Pos.Filename && ig.covers(d.Analyzer, d.Pos.Line) {
				d.Suppressed = true
				d.Reason = ig.reason
				ig.used = true
				break
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	for _, d := range diags {
		if d.Suppressed {
			report.Suppressed = append(report.Suppressed, d)
		} else {
			report.Findings = append(report.Findings, d)
			report.Counts[d.Analyzer]++
		}
	}
	report.Suppression = len(report.Suppressed)
	if report.Findings == nil {
		report.Findings = []Diagnostic{}
	}
	if report.Suppressed == nil {
		report.Suppressed = []Diagnostic{}
	}
	return report, nil
}

// DumpDOT loads the module, builds the call graph, and renders the
// subgraph reachable from root in Graphviz DOT form (cmd/dspslint
// -graph).
func DumpDOT(cfg Config, root string) (string, error) {
	dir := cfg.Dir
	if dir == "" {
		dir = "."
	}
	loader, err := NewLoader(dir, cfg.IncludeTests)
	if err != nil {
		return "", err
	}
	patterns := cfg.Patterns
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns)
	if err != nil {
		return "", err
	}
	for _, pkg := range pkgs {
		markDeterministic(loader.Module, pkg)
		markOwnedGoroutines(loader.Module, pkg)
	}
	mod := buildModule(loader, pkgs)
	return mod.Graph.DOT(root)
}

// allocExemptions collects every //dsps:allocs function, sorted by
// position for stable output.
func allocExemptions(l *Loader, mod *Module) []AllocExemption {
	out := []AllocExemption{}
	for _, n := range sortedNodes(mod.Graph) {
		if n.AllocsReason == "" || n.Decl == nil {
			continue
		}
		out = append(out, AllocExemption{
			Function: n.Label,
			Position: relPosition(l.Root, l.Fset.Position(n.Decl.Pos())),
			Reason:   n.AllocsReason,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Position < out[j].Position })
	return out
}

// markDeterministic applies the built-in path list on top of any
// //dsps:deterministic directive the loader already honored.
func markDeterministic(module string, pkg *Package) {
	if pathOnList(module, pkg.ImportPath, DeterministicPathSuffixes) {
		pkg.Deterministic = true
	}
}

// markOwnedGoroutines applies the built-in path list on top of any
// //dsps:owned-goroutines directive the loader already honored.
func markOwnedGoroutines(module string, pkg *Package) {
	if pathOnList(module, pkg.ImportPath, OwnedGoroutinePathSuffixes) {
		pkg.OwnedGoroutines = true
	}
}

func pathOnList(module, importPath string, suffixes []string) bool {
	path := strings.TrimSuffix(importPath, "_test")
	for _, suffix := range suffixes {
		full := module + suffix
		if path == full || strings.HasPrefix(path, full+"/") {
			return true
		}
	}
	return false
}

// selectAnalyzers resolves -enable/-disable names against the registry.
func selectAnalyzers(enable, disable []string) ([]*Analyzer, error) {
	byName := map[string]*Analyzer{}
	for _, a := range Analyzers() {
		byName[a.Name] = a
	}
	check := func(names []string) error {
		for _, n := range names {
			if _, ok := byName[n]; !ok {
				return fmt.Errorf("unknown analyzer %q (have: %s)", n, strings.Join(analyzerNames(), ", "))
			}
		}
		return nil
	}
	if err := check(enable); err != nil {
		return nil, err
	}
	if err := check(disable); err != nil {
		return nil, err
	}
	selected := map[string]bool{}
	if len(enable) == 0 {
		for name := range byName {
			selected[name] = true
		}
	} else {
		for _, n := range enable {
			selected[n] = true
		}
	}
	for _, n := range disable {
		delete(selected, n)
	}
	var out []*Analyzer
	for _, a := range Analyzers() {
		if selected[a.Name] {
			out = append(out, a)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no analyzers selected")
	}
	return out, nil
}

func analyzerNames() []string {
	var out []string
	for _, a := range Analyzers() {
		out = append(out, a.Name)
	}
	return out
}

// relPosition renders a token position module-relative, stable across
// machines.
func relPosition(root string, pos token.Position) string {
	file := pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	return fmt.Sprintf("%s:%d:%d", file, pos.Line, pos.Column)
}

// writeSummary emits the committed baseline form of a report.
func writeSummary(path string, r *Report) error {
	s := summaryOf(r)
	data, err := json.MarshalIndent(&s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// summaryOf reduces a report to its committed baseline form.
func summaryOf(r *Report) Summary {
	s := Summary{
		Schema:           2,
		Module:           r.Module,
		Analyzers:        r.Analyzers,
		Packages:         r.Packages,
		Files:            r.Files,
		CallGraph:        r.CallGraph,
		Findings:         r.Counts,
		TimingsMs:        r.TimingsMs,
		AllocExemptions:  r.AllocExemptions,
		SuppressionCount: len(r.Suppressed),
	}
	s.Suppressions = make([]SummarySuppression, 0, len(r.Suppressed))
	for _, d := range r.Suppressed {
		s.Suppressions = append(s.Suppressions, SummarySuppression{d.Analyzer, d.Position, d.Reason})
	}
	return s
}
