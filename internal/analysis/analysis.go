// Package analysis is a stdlib-only static-analysis framework (go/parser,
// go/ast, go/types with the source importer — no x/tools) that mechanically
// enforces the engine's determinism, hot-path, and concurrency invariants.
// The conventions DESIGN.md documents — seeded randomness, the coarse atomic
// clock on the data plane, no blocking work under the acker's shard locks —
// are one careless PR away from silently regressing; the analyzers here turn
// them into build failures with file:line positions.
//
// Since v2 the framework is interprocedural: after type-checking, the
// driver builds a module-wide call graph (see callgraph.go) and
// propagates //dsps:hotpath and determinism taint transitively, so the
// hot-path and determinism analyzers apply to every function reachable
// from an annotated root, not just the annotated body. docs/DIRECTIVES.md
// is the one-page reference for the directive grammar.
//
// Directive grammar (all line comments):
//
//	//dsps:hotpath
//	    In a function's doc comment: marks the function as a data-plane
//	    hot-path root. The walltime and allocfree analyzers check the
//	    function and everything statically reachable from it.
//
//	//dsps:coldpath
//	    In a function's doc comment: cuts hot-path taint propagation.
//	    The function is a documented cold sub-path (setup, growth,
//	    drain) that a hot caller legitimately reaches; neither it nor
//	    its callees inherit hot-path taint through this edge.
//
//	//dsps:allocs <justification>
//	    In a function's doc comment: declares the function a designed
//	    amortized allocation point on the hot path (arena refill,
//	    free-list fallback). allocfree skips the function's own body but
//	    still checks and taints its callees; the justification is carried
//	    into the report and the committed baseline.
//
//	//dsps:deterministic
//	    In a file's package doc comment: marks the whole package as
//	    seed-deterministic, enabling the globalrand and maporder
//	    analyzers. The engine packages (internal/dsps, internal/chaos,
//	    internal/nn) are always treated as deterministic regardless, so
//	    deleting the directive cannot disable enforcement. Determinism
//	    taint also propagates: functions in other packages reachable
//	    from a deterministic package are checked too.
//
//	//dsps:owned-goroutines
//	    In a file's package doc comment: every `go` statement in the
//	    package (non-test files) must have a statically visible stop or
//	    wait path (goroleak). internal/dsps, internal/serve, and
//	    internal/obs are always treated as owned regardless.
//
//	//dspslint:ignore <analyzer>[,<analyzer>...] <justification>
//	    Suppresses findings of the listed analyzers (or `*` for all) on
//	    the directive's own line and the line below it. The justification
//	    text is carried into the JSON report and the committed baseline,
//	    so suppression creep is diffable across PRs.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Directive spellings. They follow the Go directive-comment convention
// (`//tool:name`, no space after `//`) so gofmt preserves them and godoc
// hides them.
const (
	hotpathDirective       = "dsps:hotpath"
	coldpathDirective      = "dsps:coldpath"
	allocsDirective        = "dsps:allocs"
	deterministicDirective = "dsps:deterministic"
	ownedGoroDirective     = "dsps:owned-goroutines"
	ignoreDirective        = "dspslint:ignore"
)

// An Analyzer checks one invariant. Per-package analyzers implement Run
// and are invoked once per loaded package; module analyzers implement
// RunModule and are invoked exactly once with the whole call graph (so a
// cross-package cycle is reported once, not once per package).
type Analyzer struct {
	// Name is the analyzer's identifier, used in -enable/-disable flags,
	// ignore directives, and diagnostics.
	Name string
	// Doc is a one-line description of the invariant the analyzer guards.
	Doc string
	// Run inspects the package held by pass and reports findings.
	Run func(pass *Pass)
	// RunModule inspects the whole module via pass.Mod. Exactly one of
	// Run/RunModule is set.
	RunModule func(pass *Pass)
}

// Analyzers returns the full registry in stable (alphabetical) order.
func Analyzers() []*Analyzer {
	all := []*Analyzer{
		AllocFree,
		AtomicMix,
		GlobalRand,
		GoroLeak,
		LockedSend,
		LockOrder,
		MapOrder,
		RingMisuse,
		SpliceSend,
		WallTime,
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	return all
}

// A Diagnostic is one finding, positioned for editors (file:line:col).
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Position string         `json:"position"` // file:line:col, module-relative
	Message  string         `json:"message"`
	// Suppressed marks findings covered by a //dspslint:ignore directive;
	// they are reported in JSON output but do not fail the run.
	Suppressed bool   `json:"suppressed,omitempty"`
	Reason     string `json:"reason,omitempty"` // the directive's justification
}

// A Pass carries one analyzer's view of one type-checked package, plus
// the module-wide call graph shared by every pass. Module-scoped
// analyzers (RunModule) receive a Pass with only Analyzer, Fset, Mod,
// and the diagnostic sink populated.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Deterministic is true for packages under the engine's seeded-
	// determinism contract (built-in path list or //dsps:deterministic).
	Deterministic bool
	// Mod is the module-wide view: all loaded packages and the call
	// graph with hot-path and determinism taint already propagated.
	Mod *Module

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf is a nil-tolerant Info.TypeOf: analysis keeps going on packages
// with partial type information instead of panicking.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// pkgNamed reports whether e is an identifier naming an imported package
// with the given import path (e.g. "time", "math/rand").
func (p *Pass) pkgNamed(e ast.Expr, path string) bool {
	id, ok := e.(*ast.Ident)
	if !ok || p.Info == nil {
		return false
	}
	pn, ok := p.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == path
}

// An ignoreEntry is one parsed //dspslint:ignore directive.
type ignoreEntry struct {
	file      string
	line      int
	analyzers map[string]bool // nil means all ("*")
	reason    string
	pos       token.Position
	used      bool
}

// covers reports whether the entry suppresses a finding by the named
// analyzer at the given line: the directive's own line or the next one,
// so both trailing comments and own-line comments above the code work.
func (e *ignoreEntry) covers(analyzer string, line int) bool {
	if line != e.line && line != e.line+1 {
		return false
	}
	return e.analyzers == nil || e.analyzers[analyzer]
}

// parseIgnores extracts every //dspslint:ignore directive from a file.
func parseIgnores(fset *token.FileSet, f *ast.File) []*ignoreEntry {
	var out []*ignoreEntry
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text, ok := strings.CutPrefix(c.Text, "//"+ignoreDirective)
			if !ok {
				continue
			}
			pos := fset.Position(c.Pos())
			entry := &ignoreEntry{file: pos.Filename, line: pos.Line, pos: pos}
			fields := strings.Fields(text)
			if len(fields) > 0 && fields[0] != "*" {
				entry.analyzers = map[string]bool{}
				for _, name := range strings.Split(fields[0], ",") {
					entry.analyzers[name] = true
				}
			}
			if len(fields) > 1 {
				entry.reason = strings.Join(fields[1:], " ")
			}
			out = append(out, entry)
		}
	}
	return out
}

// hasDirective reports whether the comment group contains the given
// directive as its own line comment.
func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return true
		}
	}
	return false
}

// directiveArg returns the text following the given directive in cg
// ("", false when the directive is absent).
func directiveArg(cg *ast.CommentGroup, directive string) (string, bool) {
	if cg == nil {
		return "", false
	}
	for _, c := range cg.List {
		rest, ok := strings.CutPrefix(c.Text, "//"+directive)
		if ok && (rest == "" || rest[0] == ' ' || rest[0] == '\t') {
			return strings.TrimSpace(rest), true
		}
	}
	return "", false
}

// isHotpath reports whether fn's doc comment carries //dsps:hotpath.
func isHotpath(fn *ast.FuncDecl) bool { return hasDirective(fn.Doc, hotpathDirective) }

// fileDeterministic reports whether the file's package doc carries
// //dsps:deterministic.
func fileDeterministic(f *ast.File) bool { return hasDirective(f.Doc, deterministicDirective) }

// fileOwnedGoroutines reports whether the file's package doc carries
// //dsps:owned-goroutines.
func fileOwnedGoroutines(f *ast.File) bool { return hasDirective(f.Doc, ownedGoroDirective) }

// funcLabel names a function declaration for diagnostics, including the
// receiver type for methods.
func funcLabel(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	var b strings.Builder
	writeRecvType(&b, fn.Recv.List[0].Type)
	return b.String() + "." + fn.Name.Name
}

func writeRecvType(b *strings.Builder, e ast.Expr) {
	switch t := e.(type) {
	case *ast.StarExpr:
		b.WriteString("*")
		writeRecvType(b, t.X)
	case *ast.Ident:
		b.WriteString(t.Name)
	case *ast.IndexExpr: // generic receiver
		writeRecvType(b, t.X)
	case *ast.IndexListExpr:
		writeRecvType(b, t.X)
	default:
		b.WriteString("?")
	}
}
