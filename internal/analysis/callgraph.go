package analysis

// Interprocedural layer: a module-wide call graph over the type-checked
// packages, with //dsps:hotpath and determinism taint propagated along
// its edges. Per-function analyzers consult the graph to decide whether
// a function is "hot" (reachable from an annotated root) or
// determinism-relevant (reachable from a deterministic package), and the
// module analyzers (lockorder, goroleak) traverse it directly.
//
// Soundness limits, by construction:
//
//   - Static calls, method calls through concrete receiver types, and
//     the calls inside `go`/`defer` statements produce edges. Interface
//     method calls and calls through func values produce NO edge — the
//     callee set is unknowable without whole-program type flow. Such
//     sites are counted (CallGraph.Dynamic) and surfaced in the
//     baseline so growth of the blind spot is at least diffable.
//   - A function literal's body is attributed to its enclosing
//     declaration: calls inside a closure become edges from the
//     enclosing function. Literals spawned by a `go` statement are the
//     exception — their calls become EdgeGo edges, which hot-path taint
//     does not cross (the spawned goroutine is concurrent with, not
//     part of, the hot path). Determinism taint crosses all edge kinds.
//   - Edges into packages outside the loaded set (stdlib, out-of-pattern
//     module packages) terminate at body-less external nodes; taint
//     stops there.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Module is the whole-module view every pass shares.
type Module struct {
	Fset     *token.FileSet
	Root     string // module root directory
	Path     string // module path from go.mod
	Packages []*Package
	Graph    *CallGraph
}

// An EdgeKind classifies how a call site transfers control.
type EdgeKind uint8

const (
	// EdgeCall is a plain synchronous call (including calls made inside
	// non-go function literals, attributed to the enclosing function).
	EdgeCall EdgeKind = iota
	// EdgeGo marks calls that start a new goroutine: the `go` statement's
	// own call, and every call inside a `go func(){...}` literal body.
	EdgeGo
	// EdgeDefer marks a deferred call; it still runs on the caller's
	// goroutine, so taint treats it like EdgeCall.
	EdgeDefer
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeGo:
		return "go"
	case EdgeDefer:
		return "defer"
	default:
		return "call"
	}
}

// An Edge is one resolved call site.
type Edge struct {
	Caller *FuncNode
	Callee *FuncNode
	Kind   EdgeKind
	Pos    token.Pos
}

// A FuncNode is one function in the call graph. Nodes for functions
// declared in loaded packages carry their declaration; calls into
// packages outside the loaded set produce body-less external nodes.
type FuncNode struct {
	Key   string // stable qualified name, identical across type-check universes
	Label string // compact diagnostic name: pkgname.(*Recv).Method
	Func  *types.Func
	Decl  *ast.FuncDecl // nil for external nodes
	Pkg   *Package      // nil for external nodes
	Out   []*Edge
	In    []*Edge

	// Direct annotations from the doc comment.
	Hotpath      bool   // //dsps:hotpath
	Coldpath     bool   // //dsps:coldpath
	AllocsReason string // //dsps:allocs justification ("" = none)

	// Propagated taint. HotVia/DetVia record the edge the taint arrived
	// through (nil on a directly annotated root / in-package function),
	// so diagnostics can print a witness chain.
	HotTainted bool
	HotVia     *Edge
	DetTainted bool
	DetVia     *Edge
}

// External reports whether the node has no loaded source.
func (n *FuncNode) External() bool { return n.Decl == nil }

// HotChain renders the witness path from an annotated root to n, e.g.
// "dsps.(*spoutCollector).EmitInt64 → dsps.(*spoutCollector).emit".
func (n *FuncNode) HotChain() string { return chain(n, func(m *FuncNode) *Edge { return m.HotVia }) }

// DetChain renders the witness path from a deterministic package to n.
func (n *FuncNode) DetChain() string { return chain(n, func(m *FuncNode) *Edge { return m.DetVia }) }

func chain(n *FuncNode, via func(*FuncNode) *Edge) string {
	var names []string
	for m := n; m != nil; {
		names = append(names, m.Label)
		e := via(m)
		if e == nil {
			break
		}
		m = e.Caller
	}
	// Reverse: root first.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	return strings.Join(names, " → ")
}

// CallGraph is the module-wide call graph.
type CallGraph struct {
	Nodes map[string]*FuncNode
	// DeclNodes maps a function declaration to its node, for per-package
	// analyzers walking file ASTs.
	DeclNodes map[*ast.FuncDecl]*FuncNode
	// Edges is the total resolved edge count; Dynamic counts call sites
	// with no static callee (interface dispatch, func values) — the
	// graph's documented blind spot.
	Edges   int
	Dynamic int
}

// NodeAt returns the graph node for a declaration (nil when the
// declaration failed to type-check).
func (g *CallGraph) NodeAt(decl *ast.FuncDecl) *FuncNode { return g.DeclNodes[decl] }

// buildModule constructs the module view: call graph plus propagated
// taint.
func buildModule(l *Loader, pkgs []*Package) *Module {
	m := &Module{Fset: l.Fset, Root: l.Root, Path: l.Module, Packages: pkgs}
	g := &CallGraph{Nodes: map[string]*FuncNode{}, DeclNodes: map[*ast.FuncDecl]*FuncNode{}}
	m.Graph = g

	// Pass 1: a node per function declaration in every loaded package.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				obj, _ := pkg.Info.Defs[fn.Name].(*types.Func)
				node := &FuncNode{
					Key:      declKey(l.Fset, pkg, fn, obj),
					Label:    pkgBase(pkg.ImportPath) + "." + funcLabel(fn),
					Func:     obj,
					Decl:     fn,
					Pkg:      pkg,
					Hotpath:  isHotpath(fn),
					Coldpath: hasDirective(fn.Doc, coldpathDirective),
				}
				if reason, ok := directiveArg(fn.Doc, allocsDirective); ok {
					if reason == "" {
						reason = "(no justification given)"
					}
					node.AllocsReason = reason
				}
				g.Nodes[node.Key] = node
				g.DeclNodes[fn] = node
			}
		}
	}

	// Pass 2: edges from every body.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				node := g.DeclNodes[fn]
				if node == nil {
					continue
				}
				b := &edgeWalker{g: g, node: node, info: pkg.Info}
				b.walk(fn.Body, EdgeCall)
			}
		}
	}

	g.propagateHot()
	g.propagateDet()
	return m
}

// declKey produces a stable node key for a declaration. types.Func
// FullName strings are identical across type-check universes, so a
// cross-package call resolved through the importer unifies with the node
// built from the callee's own package. Multiple init functions share a
// name; their (never-called) nodes are disambiguated by position.
func declKey(fset *token.FileSet, pkg *Package, fn *ast.FuncDecl, obj *types.Func) string {
	if obj == nil {
		return pkg.ImportPath + "." + funcLabel(fn) + "@" + fset.Position(fn.Pos()).String()
	}
	if fn.Name.Name == "init" && fn.Recv == nil {
		return obj.FullName() + "@" + fset.Position(fn.Pos()).String()
	}
	return funcObjKey(obj)
}

// funcObjKey is the node key for a resolved callee object.
func funcObjKey(obj *types.Func) string { return obj.Origin().FullName() }

// pkgBase is the last path element of an import path, with the
// external-test suffix folded away.
func pkgBase(path string) string {
	base := path
	if i := strings.LastIndex(base, "/"); i >= 0 {
		base = base[i+1:]
	}
	return strings.TrimSuffix(base, "_test")
}

// edgeWalker adds edges for every call in one declaration's body.
type edgeWalker struct {
	g    *CallGraph
	node *FuncNode
	info *types.Info
}

// walk visits stmts/exprs under n, attributing calls to the walker's
// node with the given kind. Function literals are walked inline with the
// current kind, except literals spawned by `go`, whose calls become
// EdgeGo.
func (w *edgeWalker) walk(n ast.Node, kind EdgeKind) {
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.GoStmt:
			w.call(x.Call, EdgeGo)
			// Arguments are evaluated on the spawning goroutine…
			for _, arg := range x.Call.Args {
				w.walk(arg, kind)
			}
			// …but a spawned literal's body runs concurrently.
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.walk(lit.Body, EdgeGo)
			}
			return false
		case *ast.DeferStmt:
			w.call(x.Call, EdgeDefer)
			for _, arg := range x.Call.Args {
				w.walk(arg, kind)
			}
			if lit, ok := ast.Unparen(x.Call.Fun).(*ast.FuncLit); ok {
				w.walk(lit.Body, EdgeDefer)
			}
			return false
		case *ast.CallExpr:
			w.call(x, kind)
			return true
		}
		return true
	})
}

// call resolves one call site and adds an edge (or counts it dynamic).
func (w *edgeWalker) call(call *ast.CallExpr, kind EdgeKind) {
	fn, dynamic := resolveCallee(w.info, call)
	if fn == nil {
		if dynamic {
			w.g.Dynamic++
		}
		return
	}
	key := funcObjKey(fn)
	callee := w.g.Nodes[key]
	if callee == nil {
		callee = &FuncNode{Key: key, Label: externalLabel(fn), Func: fn}
		w.g.Nodes[key] = callee
	}
	e := &Edge{Caller: w.node, Callee: callee, Kind: kind, Pos: call.Pos()}
	w.node.Out = append(w.node.Out, e)
	callee.In = append(callee.In, e)
	w.g.Edges++
}

func externalLabel(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	if recv := recvTypeName(fn); recv != "" {
		return pkgBase(fn.Pkg().Path()) + "." + recv + "." + fn.Name()
	}
	return pkgBase(fn.Pkg().Path()) + "." + fn.Name()
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	star := ""
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
		star = "*"
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	return "(" + star + named.Obj().Name() + ")"
}

// resolveCallee finds the static callee of a call expression, if any.
// dynamic is true when the call dispatches through an interface method,
// a func value, or a func-typed field — sites the graph cannot follow.
// Conversions and builtin calls return (nil, false): they are not calls
// into user code at all.
func resolveCallee(info *types.Info, call *ast.CallExpr) (fn *types.Func, dynamic bool) {
	fun := ast.Unparen(call.Fun)
	// Unwrap explicit generic instantiation: f[T](…).
	switch idx := fun.(type) {
	case *ast.IndexExpr:
		if _, isType := info.Types[idx.Index]; isType {
			fun = ast.Unparen(idx.X)
		}
	case *ast.IndexListExpr:
		fun = ast.Unparen(idx.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch o := info.Uses[fun].(type) {
		case *types.Func:
			return o, false
		case *types.Builtin, *types.TypeName, nil:
			return nil, false
		default: // *types.Var etc.: a func value
			return nil, true
		}
	case *ast.SelectorExpr:
		if s, ok := info.Selections[fun]; ok {
			switch s.Kind() {
			case types.MethodVal, types.MethodExpr:
				f, ok := s.Obj().(*types.Func)
				if !ok {
					return nil, true
				}
				if types.IsInterface(s.Recv()) {
					return nil, true // interface dispatch: callee set unknown
				}
				return f, false
			default: // FieldVal: calling a func-typed field
				return nil, true
			}
		}
		// Package-qualified: pkg.Func, pkg.Type(...) or pkg.funcVar(...).
		switch o := info.Uses[fun.Sel].(type) {
		case *types.Func:
			return o, false
		case *types.TypeName, nil:
			return nil, false
		default:
			return nil, true
		}
	case *ast.FuncLit:
		return nil, false // immediately-invoked literal: body walked inline
	default:
		// Computed expression of function type (map lookup, call result…).
		return nil, true
	}
}

// propagateHot floods hot-path taint from every annotated root along
// EdgeCall/EdgeDefer edges, stopping at //dsps:coldpath functions and
// external nodes. //dsps:allocs functions propagate taint (their callees
// are still on the hot path); only allocfree skips their own body.
func (g *CallGraph) propagateHot() {
	var queue []*FuncNode
	for _, n := range sortedNodes(g) {
		if n.Hotpath && !n.Coldpath {
			n.HotTainted = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			if e.Kind == EdgeGo {
				continue
			}
			c := e.Callee
			if c.External() || c.Coldpath || c.HotTainted {
				continue
			}
			c.HotTainted = true
			c.HotVia = e
			queue = append(queue, c)
		}
	}
}

// propagateDet floods determinism taint from every function declared in
// a deterministic package, along all edge kinds (a goroutine spawned by
// deterministic code must replay deterministically too). Taint only
// matters outside deterministic packages — inside one, the whole package
// is checked anyway.
func (g *CallGraph) propagateDet() {
	var queue []*FuncNode
	for _, n := range sortedNodes(g) {
		if n.Pkg != nil && n.Pkg.Deterministic {
			n.DetTainted = true
			queue = append(queue, n)
		}
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Out {
			c := e.Callee
			if c.External() || c.DetTainted {
				continue
			}
			c.DetTainted = true
			c.DetVia = e
			queue = append(queue, c)
		}
	}
}

// sortedNodes returns the graph's nodes in stable key order, so taint
// witness chains and diagnostics do not depend on map iteration.
func sortedNodes(g *CallGraph) []*FuncNode {
	out := make([]*FuncNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Stats summarizes the graph for the report and baseline. Only nodes
// with loaded declarations count as graph nodes; external leaves are a
// property of the edges that reach them.
func (g *CallGraph) Stats() (nodes, edges, dynamic int) {
	for _, n := range g.Nodes {
		if !n.External() {
			nodes++
		}
	}
	return nodes, g.Edges, g.Dynamic
}

// DOT renders the subgraph reachable from every node whose key, label,
// or bare function name matches root, in Graphviz DOT form. Hot-path
// roots are drawn filled, hot-tainted nodes shaded, external nodes
// dashed; go edges are dashed and defer edges dotted.
func (g *CallGraph) DOT(root string) (string, error) {
	var starts []*FuncNode
	for _, n := range sortedNodes(g) {
		if n.External() {
			continue
		}
		if n.Key == root || n.Label == root || matchesBareName(n, root) {
			starts = append(starts, n)
		}
	}
	if len(starts) == 0 {
		return "", fmt.Errorf("no function matches %q (try the diagnostic label, e.g. dsps.(*spoutCollector).EmitInt64, or a bare name)", root)
	}
	seen := map[*FuncNode]bool{}
	var order []*FuncNode
	var visit func(n *FuncNode)
	visit = func(n *FuncNode) {
		if seen[n] {
			return
		}
		seen[n] = true
		order = append(order, n)
		if n.External() {
			return
		}
		for _, e := range n.Out {
			visit(e.Callee)
		}
	}
	for _, s := range starts {
		visit(s)
	}

	var b strings.Builder
	b.WriteString("digraph callgraph {\n")
	b.WriteString("  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	id := map[*FuncNode]string{}
	for i, n := range order {
		id[n] = fmt.Sprintf("n%d", i)
		attrs := []string{fmt.Sprintf("label=%q", n.Label)}
		switch {
		case n.Hotpath:
			attrs = append(attrs, `style=filled`, `fillcolor=salmon`)
		case n.HotTainted:
			attrs = append(attrs, `style=filled`, `fillcolor=mistyrose`)
		case n.External():
			attrs = append(attrs, `style=dashed`)
		}
		fmt.Fprintf(&b, "  %s [%s];\n", id[n], strings.Join(attrs, ", "))
	}
	for _, n := range order {
		for _, e := range n.Out {
			if !seen[e.Callee] {
				continue
			}
			style := ""
			switch e.Kind {
			case EdgeGo:
				style = ` [style=dashed, label="go"]`
			case EdgeDefer:
				style = ` [style=dotted, label="defer"]`
			}
			fmt.Fprintf(&b, "  %s -> %s%s;\n", id[n], id[e.Callee], style)
		}
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func matchesBareName(n *FuncNode, root string) bool {
	if n.Decl == nil {
		return false
	}
	return n.Decl.Name.Name == root || funcLabel(n.Decl) == root
}
