package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// AtomicMix flags struct fields that are accessed through sync/atomic
// functions (atomic.AddInt64(&s.n, 1)) in one place and by plain load or
// store (s.n++, s.n = 0, if s.n > 0) in another. Mixing the two is a data
// race the race detector only catches when the schedule cooperates; the
// fix is either full atomic discipline or the typed atomic.Int64 wrappers
// the engine's counters use, which make mixing impossible.
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "struct field accessed both through sync/atomic and by plain load/store",
	Run:  runAtomicMix,
}

// atomicAccess records where and how a field was touched.
type atomicAccess struct {
	pos  ast.Node
	via  string // the atomic.* function name, or "" for plain access
	fn   string // enclosing function label, for the diagnostic
	expr *ast.SelectorExpr
}

func runAtomicMix(pass *Pass) {
	atomicUses := map[*types.Var][]atomicAccess{}
	plainUses := map[*types.Var][]atomicAccess{}
	// Selectors consumed as &arg of an atomic call, so the generic
	// selector walk below does not double-count them as plain accesses.
	viaAtomic := map[*ast.SelectorExpr]bool{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			label := funcLabel(fn)
			// First pass: atomic calls taking &field.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || !pass.pkgNamed(sel.X, "sync/atomic") {
					return true
				}
				for _, arg := range call.Args {
					ue, ok := arg.(*ast.UnaryExpr)
					if !ok || ue.Op.String() != "&" {
						continue
					}
					fieldSel, ok := ue.X.(*ast.SelectorExpr)
					if !ok {
						continue
					}
					if fv := fieldVar(pass, fieldSel); fv != nil {
						viaAtomic[fieldSel] = true
						atomicUses[fv] = append(atomicUses[fv], atomicAccess{
							pos: fieldSel, via: "atomic." + sel.Sel.Name, fn: label, expr: fieldSel,
						})
					}
				}
				return true
			})
			// Second pass: every other access to a struct field.
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				fieldSel, ok := n.(*ast.SelectorExpr)
				if !ok || viaAtomic[fieldSel] {
					return true
				}
				if fv := fieldVar(pass, fieldSel); fv != nil {
					plainUses[fv] = append(plainUses[fv], atomicAccess{
						pos: fieldSel, fn: label, expr: fieldSel,
					})
				}
				return true
			})
		}
	}

	// Report each plain access to a field that is atomically accessed
	// anywhere in the package.
	fields := make([]*types.Var, 0, len(atomicUses))
	for fv := range atomicUses {
		fields = append(fields, fv)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, fv := range fields {
		plains := plainUses[fv]
		if len(plains) == 0 {
			continue
		}
		au := atomicUses[fv][0]
		auPos := pass.Fset.Position(au.expr.Pos())
		for _, pu := range plains {
			pass.Reportf(pu.expr.Pos(),
				"field %s is accessed with %s in %s (%s:%d) but by plain load/store in %s; pick one discipline (or use atomic.Int64-style typed atomics)",
				fieldPath(fv), au.via, au.fn, shortFile(auPos.Filename), auPos.Line, pu.fn)
		}
	}
}

// fieldVar resolves a selector to the struct field it names, or nil.
func fieldVar(pass *Pass, sel *ast.SelectorExpr) *types.Var {
	if pass.Info == nil {
		return nil
	}
	s, ok := pass.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	fv, ok := s.Obj().(*types.Var)
	if !ok || fv.Pkg() != pass.Pkg {
		return nil
	}
	return fv
}

// fieldPath names a field as Struct.field for diagnostics.
func fieldPath(fv *types.Var) string {
	// The field's owning struct is not directly reachable from the Var;
	// the package-qualified name is enough to identify it in a diagnostic.
	return fv.Name()
}

// shortFile trims a path to its last two segments for compact messages.
func shortFile(path string) string {
	parts := strings.Split(path, "/")
	if len(parts) <= 2 {
		return path
	}
	return strings.Join(parts[len(parts)-2:], "/")
}
