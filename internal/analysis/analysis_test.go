package analysis

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files from current analyzer output")

// TestAnalyzerGolden runs each analyzer over its corpus under testdata/:
// positive.go carries violations that must be reported (compared against
// expected.golden), suppressed.go carries the same class of violations
// under justified //dspslint:ignore directives that must not fail the run.
func TestAnalyzerGolden(t *testing.T) {
	for _, a := range Analyzers() {
		t.Run(a.Name, func(t *testing.T) {
			dir := filepath.Join("testdata", a.Name)
			rep, err := Analyze(Config{
				Dir:      dir,
				Patterns: []string{"."},
				Enable:   []string{a.Name},
			})
			if err != nil {
				t.Fatalf("Analyze: %v", err)
			}
			if len(rep.TypeErrors) > 0 {
				t.Fatalf("corpus does not type-check: %v", rep.TypeErrors)
			}

			var b strings.Builder
			for _, d := range rep.Findings {
				fmt.Fprintf(&b, "%s: %s\n", filepath.Base(strings.SplitN(d.Position, ":", 2)[0])+":"+strings.SplitN(d.Position, ":", 2)[1], d.Message)
			}
			got := b.String()
			golden := filepath.Join(dir, "expected.golden")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}

			// Every corpus demonstrates suppression: at least one finding
			// in suppressed.go, all suppressed, all with a justification.
			if len(rep.Suppressed) == 0 {
				t.Errorf("corpus has no suppressed finding; suppressed.go must trigger %s under a //dspslint:ignore", a.Name)
			}
			for _, d := range rep.Suppressed {
				if d.Reason == "" {
					t.Errorf("suppression at %s carries no justification text", d.Position)
				}
			}
			for _, d := range rep.Findings {
				if strings.Contains(d.Position, "suppressed.go") {
					t.Errorf("unsuppressed finding leaked from suppressed.go: %s: %s", d.Position, d.Message)
				}
			}
		})
	}
}

// TestWallTimeCatchesInjectedNow pins the acceptance criterion directly:
// the corpus's annotated hot-path function with a time.Now() call is
// caught by the walltime analyzer.
func TestWallTimeCatchesInjectedNow(t *testing.T) {
	rep, err := Analyze(Config{
		Dir:      filepath.Join("testdata", "walltime"),
		Patterns: []string{"."},
		Enable:   []string{"walltime"},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	found := false
	for _, d := range rep.Findings {
		if strings.Contains(d.Message, "time.Now") && strings.Contains(d.Message, "stampEnvelope") {
			found = true
		}
	}
	if !found {
		t.Fatalf("walltime did not catch the injected time.Now in stampEnvelope; findings: %+v", rep.Findings)
	}
}

// TestWallTimeTransitivePropagation pins the interprocedural acceptance
// criterion: a time.Now two static calls below a //dsps:hotpath root is
// reported against the un-annotated callee, with the witness chain from
// the root in the message.
func TestWallTimeTransitivePropagation(t *testing.T) {
	rep, err := Analyze(Config{
		Dir:      filepath.Join("testdata", "walltime"),
		Patterns: []string{"."},
		Enable:   []string{"walltime"},
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	found := false
	for _, d := range rep.Findings {
		if strings.Contains(d.Message, "time.Now in stampDeep") &&
			strings.Contains(d.Message, "hotRoot") &&
			strings.Contains(d.Message, "middle") {
			found = true
		}
	}
	if !found {
		t.Fatalf("walltime did not report the time.Now two calls below hotRoot with its witness chain; findings: %+v", rep.Findings)
	}
}

// TestAllocFreeCatchesInjectedBoxing pins the 0-alloc acceptance
// criterion: the corpus's interface boxing injected two calls below the
// hot root fails the run, carrying the call-graph witness chain.
func TestAllocFreeCatchesInjectedBoxing(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := Run(Config{
		Dir:      filepath.Join("testdata", "allocfree"),
		Patterns: []string{"."},
		Enable:   []string{"allocfree"},
		Stdout:   &out,
		Stderr:   &errBuf,
	})
	if code != 1 {
		t.Fatalf("boxing corpus must fail lint; got exit %d (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "boxes on the heap in record") ||
		!strings.Contains(out.String(), "emitFast") {
		t.Fatalf("missing transitive boxing finding with witness chain:\n%s", out.String())
	}
}

// TestBaselineSuppressionDrift pins both drift directions: a recorded
// suppression with no live directive behind it (stale) and a live
// suppression the baseline never recorded (unrecorded) each fail the
// baseline check with an actionable message.
func TestBaselineSuppressionDrift(t *testing.T) {
	rep := &Report{Suppressed: []Diagnostic{
		{Analyzer: "walltime", Position: "a/b.go:10:2", Reason: "justified"},
	}}
	write := func(s Summary) string {
		path := filepath.Join(t.TempDir(), "baseline.json")
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	exact := write(Summary{Schema: 2, Suppressions: []SummarySuppression{
		{Analyzer: "walltime", Position: "a/b.go:10:2", Reason: "justified"},
	}})
	drift, err := VerifyBaseline(exact, rep)
	if err != nil || len(drift) != 0 {
		t.Fatalf("matching baseline must verify clean, got %v (%v)", drift, err)
	}

	stale := write(Summary{Schema: 2, Suppressions: []SummarySuppression{
		{Analyzer: "walltime", Position: "a/b.go:10:2", Reason: "justified"},
		{Analyzer: "maporder", Position: "gone.go:3:1", Reason: "deleted long ago"},
	}})
	drift, err = VerifyBaseline(stale, rep)
	if err != nil || len(drift) != 1 || !strings.Contains(drift[0], "stale suppression") {
		t.Fatalf("stale recorded suppression must drift, got %v (%v)", drift, err)
	}

	empty := write(Summary{Schema: 2})
	drift, err = VerifyBaseline(empty, rep)
	if err != nil || len(drift) != 1 || !strings.Contains(drift[0], "unrecorded suppression") {
		t.Fatalf("unrecorded live suppression must drift, got %v (%v)", drift, err)
	}

	if _, err := VerifyBaseline(filepath.Join(t.TempDir(), "missing.json"), rep); err == nil {
		t.Fatalf("unreadable baseline must be a hard error, not silent drift")
	}
}

// TestRepoIsLintClean is the driver self-test: dspslint over the whole
// repository must exit clean, with the full analyzer registry active and
// a non-trivial call graph behind the interprocedural passes.
func TestRepoIsLintClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	rep, err := Analyze(Config{
		Dir:          filepath.Join("..", ".."),
		Patterns:     []string{"./..."},
		IncludeTests: true,
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(rep.Analyzers) < 10 {
		t.Fatalf("want >= 10 analyzers active, got %v", rep.Analyzers)
	}
	if rep.CallGraph.Nodes < 100 || rep.CallGraph.Edges < 100 {
		t.Errorf("suspiciously small call graph: %+v (builder regression?)", rep.CallGraph)
	}
	for _, e := range rep.TypeErrors {
		t.Errorf("type error: %s", e)
	}
	for _, d := range rep.Findings {
		t.Errorf("finding: %s: %s: %s", d.Position, d.Analyzer, d.Message)
	}
	if rep.Packages < 20 {
		t.Errorf("suspiciously few packages loaded: %d (loader regression?)", rep.Packages)
	}
	for _, d := range rep.Suppressed {
		if d.Reason == "" {
			t.Errorf("suppression at %s has no justification", d.Position)
		}
	}
}

// TestDeterministicMarking pins both marking paths: the built-in package
// list and the //dsps:deterministic directive.
func TestDeterministicMarking(t *testing.T) {
	pkg := &Package{ImportPath: "predstream/internal/dsps"}
	markDeterministic("predstream", pkg)
	if !pkg.Deterministic {
		t.Errorf("internal/dsps must be deterministic via the built-in list")
	}
	ext := &Package{ImportPath: "predstream/internal/dsps_test"}
	markDeterministic("predstream", ext)
	if !ext.Deterministic {
		t.Errorf("external test package of a deterministic package must inherit the marking")
	}
	other := &Package{ImportPath: "predstream/internal/console"}
	markDeterministic("predstream", other)
	if other.Deterministic {
		t.Errorf("internal/console is not on the built-in deterministic list")
	}
}

// TestSelectAnalyzers covers the enable/disable flag plumbing.
func TestSelectAnalyzers(t *testing.T) {
	all, err := selectAnalyzers(nil, nil)
	if err != nil || len(all) != 10 {
		t.Fatalf("want all 10 analyzers, got %d (%v)", len(all), err)
	}
	only, err := selectAnalyzers([]string{"walltime"}, nil)
	if err != nil || len(only) != 1 || only[0].Name != "walltime" {
		t.Fatalf("enable=walltime: got %v (%v)", only, err)
	}
	rest, err := selectAnalyzers(nil, []string{"walltime", "maporder"})
	if err != nil || len(rest) != 8 {
		t.Fatalf("disable two: got %d (%v)", len(rest), err)
	}
	if _, err := selectAnalyzers([]string{"nope"}, nil); err == nil {
		t.Fatalf("unknown analyzer must error")
	}
	if _, err := selectAnalyzers([]string{"walltime"}, []string{"walltime"}); err == nil {
		t.Fatalf("empty selection must error")
	}
}

// TestRunJSONAndSummary covers the output formats end to end on one corpus.
func TestRunJSONAndSummary(t *testing.T) {
	var out, errBuf bytes.Buffer
	summaryPath := filepath.Join(t.TempDir(), "baseline.json")
	code := Run(Config{
		Dir:         filepath.Join("testdata", "walltime"),
		Patterns:    []string{"."},
		Enable:      []string{"walltime"},
		JSON:        true,
		SummaryPath: summaryPath,
		Stdout:      &out,
		Stderr:      &errBuf,
	})
	if code != 1 {
		t.Fatalf("corpus has findings; want exit 1, got %d (stderr: %s)", code, errBuf.String())
	}
	for _, needle := range []string{`"analyzer": "walltime"`, `"suppression_count"`, `"module": "predstream"`} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("JSON output missing %s:\n%s", needle, out.String())
		}
	}
	data, err := os.ReadFile(summaryPath)
	if err != nil {
		t.Fatalf("summary not written: %v", err)
	}
	for _, needle := range []string{`"suppression_count": 2`, `"walltime"`} {
		if !strings.Contains(string(data), needle) {
			t.Errorf("summary missing %s:\n%s", needle, data)
		}
	}
}

// TestIgnoreDirectiveParsing pins the directive grammar.
func TestIgnoreDirectiveParsing(t *testing.T) {
	e := &ignoreEntry{line: 10, analyzers: map[string]bool{"walltime": true}}
	if !e.covers("walltime", 10) || !e.covers("walltime", 11) {
		t.Errorf("directive must cover its own line and the next")
	}
	if e.covers("walltime", 12) || e.covers("maporder", 10) {
		t.Errorf("directive must not cover other lines or analyzers")
	}
	star := &ignoreEntry{line: 5}
	if !star.covers("anything", 5) {
		t.Errorf("star directive must cover all analyzers")
	}
}
