package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds a module-wide mutex acquisition-order graph and
// reports cycles — the two-lock shape of a classic AB/BA deadlock that
// no single function exhibits and lockedsend therefore cannot see.
//
// Locks are classified by declaration site, not instance: a Lock/RLock
// call on a named struct field (s.mu, owner.shards[i].mu) or a
// package-level mutex var contributes the class "pkg.Type.field" /
// "pkg.var". Within one function, acquiring B while holding A adds the
// edge A→B; a call made while holding A adds A→B for every class B the
// callee may transitively acquire (call/defer edges only — a spawned
// goroutine synchronizes through the lock, it does not extend the
// caller's critical section). `defer mu.Unlock()` keeps the lock held to
// function exit, so orderings established after it still count.
//
// Two deliberate imprecisions, both conservative in opposite directions:
// locks on local variables have no class (unnamable, skipped), and
// same-class pairs are not reported as edges — holding shards[i].mu
// while a callee locks shards[j].mu is how sharded structures work, and
// instance identity is beyond static reach. Re-acquiring the *same
// expression* while it is already held is reported directly: a
// sync.Mutex self-deadlocks re-entrantly.
var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "inconsistent mutex acquisition order across functions (AB/BA deadlock shape), and re-entrant locking",
	RunModule: runLockOrder,
}

// lockEvidence is one witness for an acquisition-order edge A→B.
type lockEvidence struct {
	pos token.Pos
	via string // callee label when the edge crosses a call, "" when direct
}

// heldCall records a static call made while holding at least one
// classified lock.
type heldCall struct {
	callee *FuncNode
	held   []string
	pos    token.Pos
}

func runLockOrder(pass *Pass) {
	mod := pass.Mod
	direct := map[*FuncNode]map[string]bool{}
	edges := map[string]map[string]*lockEvidence{}
	var calls []heldCall

	addEdge := func(from, to string, ev *lockEvidence) {
		m := edges[from]
		if m == nil {
			m = map[string]*lockEvidence{}
			edges[from] = m
		}
		if m[to] == nil { // first witness wins; package order keeps it stable
			m[to] = ev
		}
	}

	for _, pkg := range mod.Packages {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				node := mod.Graph.NodeAt(fn)
				if node == nil {
					continue
				}
				s := &lockScanner{
					pass:    pass,
					info:    pkg.Info,
					node:    node,
					addEdge: addEdge,
					acquire: func(class string) {
						set := direct[node]
						if set == nil {
							set = map[string]bool{}
							direct[node] = set
						}
						set[class] = true
					},
					calls: &calls,
				}
				s.block(fn.Body.List, map[string]string{})
			}
		}
	}

	// Close acquisition sets over call/defer edges, then turn every
	// call-under-lock into order edges against what the callee may take.
	trans := transitiveAcquires(mod.Graph, direct)
	for _, hc := range calls {
		for to := range trans[hc.callee] {
			for _, from := range hc.held {
				if from != to {
					addEdge(from, to, &lockEvidence{pos: hc.pos, via: hc.callee.Label})
				}
			}
		}
	}

	reportLockCycles(pass, edges)
}

// lockScanner walks one function body in statement order, tracking held
// locks as exprKey→class.
type lockScanner struct {
	pass    *Pass
	info    *types.Info
	node    *FuncNode
	addEdge func(from, to string, ev *lockEvidence)
	acquire func(class string)
	calls   *[]heldCall
}

func (s *lockScanner) block(stmts []ast.Stmt, held map[string]string) {
	for _, stmt := range stmts {
		if call, key, class, kind, ok := s.mutexOp(stmt); ok {
			switch kind {
			case "Lock", "RLock":
				if prev, already := held[key]; already {
					s.pass.Reportf(call.Pos(),
						"%s (%s) locked again while already held by this function; a sync.%s self-deadlocks re-entrantly",
						key, prev, mutexKind(s.info, call))
					continue
				}
				if class != "" {
					s.acquire(class)
					for _, heldClass := range held {
						if heldClass != class && heldClass != "" {
							s.addEdge(heldClass, class, &lockEvidence{pos: call.Pos()})
						}
					}
				}
				held[key] = class
			case "Unlock", "RUnlock":
				delete(held, key)
			}
			continue
		}
		// `defer mu.Unlock()` keeps the lock held to function exit: do
		// NOT clear it — later acquisitions still order against it.
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if _, _, _, kind, ok := s.mutexOp(&ast.ExprStmt{X: d.Call}); ok &&
				(kind == "Unlock" || kind == "RUnlock") {
				continue
			}
		}
		if len(held) > 0 {
			s.recordCalls(stmt, held)
		}
		for _, body := range nestedBlocks(stmt) {
			s.block(body, copyHeldClasses(held))
		}
	}
}

// recordCalls collects static calls inside stmt's own expressions (not
// nested blocks — block recurses into those — nor function literals,
// which run outside this critical section).
func (s *lockScanner) recordCalls(stmt ast.Stmt, held map[string]string) {
	var classes []string
	seen := map[string]bool{}
	for _, c := range held {
		if c != "" && !seen[c] {
			seen[c] = true
			classes = append(classes, c)
		}
	}
	if len(classes) == 0 {
		return
	}
	sort.Strings(classes)
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.GoStmt:
			return false // the goroutine does not run under this lock
		case *ast.CallExpr:
			if fn, _ := resolveCallee(s.info, n); fn != nil {
				if callee := s.pass.Mod.Graph.Nodes[funcObjKey(fn)]; callee != nil && !callee.External() {
					*s.calls = append(*s.calls, heldCall{callee: callee, held: classes, pos: n.Pos()})
				}
			}
		}
		return true
	})
}

// mutexOp matches `expr.Lock()` / `expr.Unlock()` (and RW variants) on
// sync.Mutex/RWMutex, returning the receiver's textual key and its lock
// class ("" when the receiver is unnamable, e.g. a local variable).
func (s *lockScanner) mutexOp(stmt ast.Stmt) (call *ast.CallExpr, key, class, kind string, ok bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return nil, "", "", "", false
	}
	c, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return nil, "", "", "", false
	}
	sel, isSel := c.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return nil, "", "", "", false
	}
	fn, isFn := s.info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return nil, "", "", "", false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") && !strings.HasPrefix(full, "(*sync.RWMutex).") {
		return nil, "", "", "", false
	}
	return c, exprKey(sel.X), s.lockClass(sel), sel.Sel.Name, true
}

// lockClass names the declaration site of the mutex a Lock selector
// resolves to: "pkg.Type.field" for struct fields (including mutexes
// promoted from embedded fields), "pkg.var" for package-level mutexes,
// "" for anything unnamable.
func (s *lockScanner) lockClass(lockSel *ast.SelectorExpr) string {
	// x.mu.Lock(): the inner selector resolves the field.
	if inner, ok := ast.Unparen(lockSel.X).(*ast.SelectorExpr); ok {
		if fs, ok := s.info.Selections[inner]; ok && fs.Kind() == types.FieldVal {
			if owner := namedOf(fs.Recv()); owner != nil {
				return qualifiedClass(owner.Obj().Pkg(), owner.Obj().Name()+"."+fs.Obj().Name())
			}
			return ""
		}
		// pkg.mu.Lock(): package-qualified var.
		if v, ok := s.info.Uses[inner.Sel].(*types.Var); ok && packageLevel(v) {
			return qualifiedClass(v.Pkg(), v.Name())
		}
		return ""
	}
	// x.Lock() with the method promoted from an embedded mutex: walk the
	// selection's field index path to name the embedded field.
	if ms, ok := s.info.Selections[lockSel]; ok && len(ms.Index()) > 1 {
		if class := embeddedMutexClass(ms); class != "" {
			return class
		}
	}
	// mu.Lock() on a bare identifier: only package-level vars are stable
	// enough to classify.
	if id, ok := ast.Unparen(lockSel.X).(*ast.Ident); ok {
		if v, ok := s.info.Uses[id].(*types.Var); ok && packageLevel(v) {
			return qualifiedClass(v.Pkg(), v.Name())
		}
	}
	return ""
}

// embeddedMutexClass resolves `x.Lock()` through embedded fields,
// returning "pkg.Owner.field" for the field that actually holds the
// mutex.
func embeddedMutexClass(sel *types.Selection) string {
	owner := namedOf(sel.Recv())
	if owner == nil {
		return ""
	}
	t := types.Type(owner)
	var lastOwner *types.Named
	var lastField *types.Var
	for _, idx := range sel.Index()[:len(sel.Index())-1] {
		st, ok := derefType(t).Underlying().(*types.Struct)
		if !ok || idx >= st.NumFields() {
			return ""
		}
		if n := namedOf(t); n != nil {
			lastOwner = n
		}
		lastField = st.Field(idx)
		t = lastField.Type()
	}
	if lastOwner == nil || lastField == nil {
		return ""
	}
	return qualifiedClass(lastOwner.Obj().Pkg(), lastOwner.Obj().Name()+"."+lastField.Name())
}

func namedOf(t types.Type) *types.Named {
	n, _ := derefType(t).(*types.Named)
	return n
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

func packageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

func qualifiedClass(pkg *types.Package, rest string) string {
	if pkg == nil {
		return rest
	}
	return pkgBase(pkg.Path()) + "." + rest
}

func mutexKind(info *types.Info, call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok &&
			strings.HasPrefix(fn.FullName(), "(*sync.RWMutex).") {
			return "RWMutex"
		}
	}
	return "Mutex"
}

func copyHeldClasses(held map[string]string) map[string]string {
	out := make(map[string]string, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// transitiveAcquires closes per-function direct acquisition sets over
// call and defer edges (not go edges) to a fixpoint: the result is every
// lock class a function may take on the caller's goroutine, directly or
// through any callee. Deferred callees run at function exit — possibly
// after explicit unlocks — so including them over-approximates; a
// cycle witnessed only through a defer edge is still worth a look.
func transitiveAcquires(g *CallGraph, direct map[*FuncNode]map[string]bool) map[*FuncNode]map[string]bool {
	acq := make(map[*FuncNode]map[string]bool, len(direct))
	for n, set := range direct {
		cp := make(map[string]bool, len(set))
		for c := range set {
			cp[c] = true
		}
		acq[n] = cp
	}
	nodes := sortedNodes(g)
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			for _, e := range n.Out {
				if e.Kind == EdgeGo || e.Callee.External() {
					continue
				}
				for c := range acq[e.Callee] {
					if !acq[n][c] {
						if acq[n] == nil {
							acq[n] = map[string]bool{}
						}
						acq[n][c] = true
						changed = true
					}
				}
			}
		}
	}
	return acq
}

// reportLockCycles finds strongly connected components of the class
// order graph and reports each component of size ≥ 2 once, with one
// witness edge per direction.
func reportLockCycles(pass *Pass, edges map[string]map[string]*lockEvidence) {
	classes := make([]string, 0, len(edges))
	for c := range edges {
		classes = append(classes, c)
	}
	sort.Strings(classes)

	sccs := lockSCCs(classes, edges)
	for _, scc := range sccs {
		if len(scc) < 2 {
			continue
		}
		sort.Strings(scc)
		in := map[string]bool{}
		for _, c := range scc {
			in[c] = true
		}
		var witness []string
		var at token.Pos
		for _, from := range scc {
			tos := make([]string, 0, len(edges[from]))
			for to := range edges[from] {
				if in[to] {
					tos = append(tos, to)
				}
			}
			sort.Strings(tos)
			for _, to := range tos {
				ev := edges[from][to]
				if at == token.NoPos {
					at = ev.pos
				}
				w := fmt.Sprintf("%s → %s (%s", from, to, relPosition(pass.Mod.Root, pass.Fset.Position(ev.pos)))
				if ev.via != "" {
					w += ", via call to " + ev.via
				}
				witness = append(witness, w+")")
			}
		}
		pass.Reportf(at,
			"lock-order cycle between %s: %s; functions that disagree on acquisition order can deadlock under contention",
			strings.Join(scc, ", "), strings.Join(witness, "; "))
	}
}

// lockSCCs is Tarjan's algorithm over the class order graph, iterative
// order kept deterministic by sorted inputs.
func lockSCCs(classes []string, edges map[string]map[string]*lockEvidence) [][]string {
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	var sccs [][]string
	next := 0

	var strongconnect func(v string)
	strongconnect = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true

		tos := make([]string, 0, len(edges[v]))
		for to := range edges[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, seen := index[w]; !seen {
				if _, hasEdges := edges[w]; !hasEdges && !onStack[w] {
					// Sink class: trivially its own SCC, skip recursion.
					index[w] = next
					low[w] = next
					next++
					continue
				}
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, c := range classes {
		if _, seen := index[c]; !seen {
			strongconnect(c)
		}
	}
	return sccs
}
