package analysis

import (
	"go/ast"
)

// WallTime bans wall-clock reads on the hot path. The data plane stamps
// envelopes from the coarse atomic clock (coarseClock.nowNs, ≤ one 500µs
// tick of error) precisely so the per-tuple path never pays a time.Now
// call; a stray time.Now/Since/Until silently reintroduces that cost and
// decouples latency stamps from the clock the histograms and the acker
// share.
//
// Since v2 the check is interprocedural: a function is checked when it
// is annotated //dsps:hotpath OR statically reachable from an annotated
// root through call/defer edges (see callgraph.go for the propagation
// rules and soundness limits). Bodies of `go func(){…}` literals are
// exempt — the spawned goroutine is concurrent with the hot path, not
// part of it.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/Since/Until inside a //dsps:hotpath function or anything it reaches; use the coarse clock",
	Run:  runWallTime,
}

// wallTimeFuncs are the package time functions that read the wall clock.
// time.After/NewTicker etc. are deliberately not listed: hot-path functions
// legitimately park on timers in their blocked (cold) sub-paths.
var wallTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			node := pass.Mod.Graph.NodeAt(fn)
			if node == nil || !node.HotTainted {
				continue
			}
			label := funcLabel(fn)
			inspectHotBody(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallTimeFuncs[sel.Sel.Name] || !pass.pkgNamed(sel.X, "time") {
					return true
				}
				// Flag the bare selector, not just calls: storing time.Now
				// as a clock func smuggles the same wall-clock read in.
				if node.Hotpath {
					pass.Reportf(sel.Pos(),
						"time.%s in hot-path function %s (//dsps:hotpath); stamp from the coarse clock instead",
						sel.Sel.Name, label)
				} else {
					pass.Reportf(sel.Pos(),
						"time.%s in %s, reachable from hot path %s; stamp from the coarse clock instead",
						sel.Sel.Name, label, node.HotChain())
				}
				return true
			})
		}
	}
}

// inspectHotBody is ast.Inspect restricted to code that runs on the hot
// caller's goroutine: bodies of function literals spawned by a `go`
// statement are skipped (the spawned goroutine is not on the hot path —
// and if it calls a named function, taint propagation already decided
// that edge).
func inspectHotBody(body ast.Node, visit func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			if _, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				// Arguments evaluate on this goroutine; the body does not.
				for _, arg := range g.Call.Args {
					inspectHotBody(arg, visit)
				}
				return false
			}
			return true
		}
		return visit(n)
	})
}
