package analysis

import (
	"go/ast"
)

// WallTime bans wall-clock reads inside functions annotated //dsps:hotpath.
// The data plane stamps envelopes from the coarse atomic clock
// (coarseClock.nowNs, ≤ one 500µs tick of error) precisely so the per-tuple
// path never pays a time.Now call; a stray time.Now/Since/Until in an
// annotated function silently reintroduces that cost and decouples latency
// stamps from the clock the histograms and the acker share.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "time.Now/Since/Until inside a //dsps:hotpath function; use the coarse clock",
	Run:  runWallTime,
}

// wallTimeFuncs are the package time functions that read the wall clock.
// time.After/NewTicker etc. are deliberately not listed: hot-path functions
// legitimately park on timers in their blocked (cold) sub-paths.
var wallTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn) {
				continue
			}
			label := funcLabel(fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok || !wallTimeFuncs[sel.Sel.Name] || !pass.pkgNamed(sel.X, "time") {
					return true
				}
				// Flag the bare selector, not just calls: storing time.Now
				// as a clock func smuggles the same wall-clock read in.
				pass.Reportf(sel.Pos(),
					"time.%s in hot-path function %s (//dsps:hotpath); stamp from the coarse clock instead",
					sel.Sel.Name, label)
				return true
			})
		}
	}
}
