package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// RingMisuse enforces the SPSC ring ownership discipline from DESIGN.md
// "Data plane v2": a ring.SPSC has exactly one producer goroutine and one
// consumer goroutine, and the compiler cannot see which is which — the
// engine records it with directives. Functions that push into (or close)
// a ring must carry //dsps:ringproducer in their doc comment; functions
// that pop from one must carry //dsps:ringconsumer. A push from an
// unannotated function is exactly how a second producer slips in: the
// Lamport ring's unsynchronized head/tail stores then corrupt slots
// silently instead of failing loudly.
//
// Side classification: Push/PushBatch/Close are producer-side (Close is a
// producer hand-off: the consumer drains to empty and prunes), Pop/
// PopBatch are consumer-side, and the read-only queries (Len, Cap, Empty,
// Closed) are free — both sides use them to decide when to park. A
// directive covers the whole declaration, function literals included;
// handing a ring to a literal that runs on another goroutine is the
// reviewer's to catch, not this analyzer's. The ring package itself (and
// its tests) is exempt: it is the implementation and legitimately
// exercises both sides.
var RingMisuse = &Analyzer{
	Name: "ringmisuse",
	Doc:  "SPSC ring push/close outside //dsps:ringproducer, or pop outside //dsps:ringconsumer",
	Run:  runRingMisuse,
}

const (
	ringProducerDirective = "dsps:ringproducer"
	ringConsumerDirective = "dsps:ringconsumer"
)

func runRingMisuse(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			producer := hasDirective(fn.Doc, ringProducerDirective)
			consumer := hasDirective(fn.Doc, ringConsumerDirective)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, defPkg := spscMethod(pass, call)
				if name == "" || defPkg == strings.TrimSuffix(pass.Pkg.Path(), "_test") {
					return true
				}
				switch name {
				case "Push", "PushBatch", "Close":
					if !producer {
						pass.Reportf(call.Pos(),
							"SPSC.%s in %s, which is not marked //dsps:ringproducer; a second producer corrupts the single-writer ring",
							name, funcLabel(fn))
					}
				case "Pop", "PopBatch":
					if !consumer {
						pass.Reportf(call.Pos(),
							"SPSC.%s in %s, which is not marked //dsps:ringconsumer; a second consumer corrupts the single-reader ring",
							name, funcLabel(fn))
					}
				}
				return true
			})
		}
	}
}

// spscMethod matches a call to a method on ring.SPSC (any instantiation,
// value or pointer receiver), returning the method name and the defining
// package's import path — callers exempt the defining package itself.
func spscMethod(pass *Pass, call *ast.CallExpr) (name, defPkg string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || pass.Info == nil {
		return "", ""
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Name() != "SPSC" {
		return "", ""
	}
	return fn.Name(), fn.Pkg().Path()
}
