// Package corpus is the goroleak analyzer's test corpus: every go
// statement in an owned-goroutines package must have a statically
// visible stop or wait path.
//
//dsps:owned-goroutines
package corpus

import "sync"

var n int

func step() { n++ }

// spin has no channel op, select, close, or WaitGroup.Done anywhere it
// reaches: a goroutine running it cannot be joined.
func spin() {
	for {
		step()
	}
}

func leakNamed() {
	go spin()
}

func leakLiteral() {
	go func() {
		for {
			step()
		}
	}()
}

type server struct{ handler func() }

// leakFuncValue spawns through a func-typed field: the callee set is
// unknowable, so the site is reported as unverifiable.
func leakFuncValue(s *server) {
	go s.handler()
}

// worker drains ch until it is closed: the range over a channel is its
// stop path.
func worker(ch chan int) {
	for v := range ch {
		n += v
	}
}

func okNamed(ch chan int) {
	go worker(ch)
}

func okWaitGroup(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		step()
	}()
}

// okTransitive reaches its select two calls down the spawned call tree.
func okTransitive(done chan struct{}) {
	go runLoop(done)
}

func runLoop(done chan struct{}) {
	for {
		if pump(done) {
			return
		}
	}
}

func pump(done chan struct{}) bool {
	select {
	case <-done:
		return true
	default:
		step()
		return false
	}
}

// okCloser signals its own completion by closing a done channel.
func okCloser(done chan struct{}) {
	go func() {
		defer close(done)
		step()
	}()
}
