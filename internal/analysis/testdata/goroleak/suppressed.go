package corpus

// detachedSampler is a deliberate fire-and-forget diagnostic goroutine;
// the leak finding is carried under a justified suppression.
func detachedSampler() {
	//dspslint:ignore goroleak diagnostics sampler is process-lifetime by design; it exits with the process
	go func() {
		for {
			step()
		}
	}()
}
