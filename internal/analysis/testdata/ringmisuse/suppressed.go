package corpus

import "predstream/internal/ring"

// shutdownDrain pops without the consumer directive, but the whole
// topology is quiesced here — suppression with justification.
func shutdownDrain(r *ring.SPSC[int]) int {
	n := 0
	for {
		//dspslint:ignore ringmisuse all goroutines joined before teardown; no live consumer to race
		_, ok := r.Pop()
		if !ok {
			return n
		}
		n++
	}
}
