// Package corpus is the ringmisuse analyzer's test corpus. It imports the
// real ring package so the analyzer's type-identity match (a method on
// ring.SPSC, any instantiation) is exercised, not a lookalike.
package corpus

import "predstream/internal/ring"

type batch struct{ vals []int }

type plane struct {
	in  *ring.SPSC[batch]
	ack *ring.SPSC[*[]int]
}

// strayPush is the bug the analyzer exists for: a second goroutine
// pushing into a single-producer ring.
func (p *plane) strayPush(b batch) {
	p.in.Push(b) // want: ringmisuse
}

// strayPushBatch covers the batch variant and a second instantiation.
func (p *plane) strayPushBatch(ops []*[]int) {
	p.ack.PushBatch(ops) // want: ringmisuse
}

// strayClose: Close is producer-side — the consumer drains and prunes,
// it never closes.
func (p *plane) strayClose() {
	p.in.Close() // want: ringmisuse
}

// strayPop is the consumer-side mirror.
func (p *plane) strayPop() (batch, bool) {
	return p.in.Pop() // want: ringmisuse
}

// strayPopBatch covers the batch variant.
func (p *plane) strayPopBatch(dst []batch) int {
	return p.in.PopBatch(dst) // want: ringmisuse
}

// wrongSide holds the consumer directive but pushes: still a violation.
//
//dsps:ringconsumer
func (p *plane) wrongSide(b batch) {
	for {
		if p.in.Push(b) { // want: ringmisuse
			return
		}
	}
}

// annotatedProducer is the engine's producer shape; must NOT be flagged.
//
//dsps:ringproducer
func (p *plane) annotatedProducer(b batch) bool {
	return p.in.Push(b)
}

// annotatedConsumer is the engine's consumer shape; must NOT be flagged.
//
//dsps:ringconsumer
func (p *plane) annotatedConsumer(dst []batch) int {
	return p.in.PopBatch(dst)
}

// retire carries both directives — the ownership-transfer shape where a
// reclaimer closes and drains a ring after its executor exited.
//
//dsps:ringproducer
//dsps:ringconsumer
func (p *plane) retire() int {
	p.in.Close()
	lost := 0
	for {
		b, ok := p.in.Pop()
		if !ok {
			return lost
		}
		lost += len(b.vals)
	}
}

// queries are free from any goroutine: both sides use them to park.
func (p *plane) queries() (int, int, bool, bool) {
	return p.in.Len(), p.in.Cap(), p.in.Empty(), p.in.Closed()
}
