package corpus

import "math/rand"

// jitterDraw keeps a justified global draw: the value never reaches a
// reported number.
func jitterDraw() float64 {
	//dspslint:ignore globalrand cosmetic log jitter, never feeds reported numbers
	return rand.Float64()
}
