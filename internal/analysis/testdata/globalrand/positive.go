// Package corpus is the globalrand analyzer's test corpus.
//
//dsps:deterministic
package corpus

import "math/rand"

// sharedRng is package-level shared generator state: draw order depends on
// goroutine scheduling even though it is seeded.
var sharedRng = rand.New(rand.NewSource(1)) // want: globalrand (the var, not the constructor)

// globalDraw uses the process-global source.
func globalDraw() float64 {
	return rand.Float64() // want: globalrand
}

// globalShuffle also touches the global source.
func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want: globalrand
}

// seededLocal is the prescribed pattern: explicitly seeded, component-local.
// Constructors must NOT be flagged.
func seededLocal(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
