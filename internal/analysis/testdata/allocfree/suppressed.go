package corpus

// legacyEmit feeds a legacy metrics sink that takes any; the boxing is a
// known cost carried under a justified suppression until the sink grows
// a typed lane.
//
//dsps:hotpath
func legacyEmit(id uint64) {
	//dspslint:ignore allocfree legacy metrics sink takes any; a typed lane is scheduled
	sink(id)
}
