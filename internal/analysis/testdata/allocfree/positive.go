// Package corpus is the allocfree analyzer's test corpus: every heap
// allocation class inside a //dsps:hotpath call tree must be caught —
// including an interface boxing injected two calls below the annotated
// root, which pins the transitive propagation acceptance criterion.
package corpus

import "fmt"

var last any

// emitFast is the annotated hot root; it reaches record through stage,
// and the boxing inside record must be reported with the witness chain.
//
//dsps:hotpath
func emitFast(id uint64) {
	stage(id)
}

func stage(id uint64) { record(id) }

// record boxes its uint64 into an interface parameter: the injected
// regression two calls below the root.
func record(id uint64) { sink(id) }

func sink(v any) { last = v }

// makeOnHot allocates directly under an annotated root.
//
//dsps:hotpath
func makeOnHot(n int) []int {
	return make([]int, n)
}

// growOnHot may grow its backing array.
//
//dsps:hotpath
func growOnHot(dst []int, v int) []int {
	return append(dst, v)
}

type pair struct{ xs []int }

// literalOnHot allocates a slice literal and an escaping composite.
//
//dsps:hotpath
func literalOnHot(v int) *pair {
	xs := []int{v}
	return &pair{xs: xs}
}

// closureOnHot allocates a capture block for the returned literal.
//
//dsps:hotpath
func closureOnHot(v int) func() int {
	return func() int { return v }
}

// spawnOnHot allocates a goroutine and its closure.
//
//dsps:hotpath
func spawnOnHot() {
	go helper()
}

func helper() {}

// convertOnHot boxes through an explicit interface conversion.
//
//dsps:hotpath
func convertOnHot(v int64) any {
	return any(v)
}

// guardOnHot panics on bad input; allocations feeding a panic are moot
// and must NOT be flagged.
//
//dsps:hotpath
func guardOnHot(n int) {
	if n < 0 {
		panic(fmt.Sprintf("corpus: negative %d", n))
	}
}

// rootWithCold reaches a //dsps:coldpath callee: taint stops there and
// the callee's allocation must NOT be flagged.
//
//dsps:hotpath
func rootWithCold() { coldSetup() }

// coldSetup is a documented cold sub-path (setup/growth).
//
//dsps:coldpath
func coldSetup() []int { return make([]int, 8) }

// arenaRefill is a declared amortized allocation point: its body is
// exempt, and the justification lands in the report.
//
//dsps:hotpath
//dsps:allocs chunk refill amortized over many tuples
func arenaRefill() []byte { return make([]byte, 4096) }

// pointerShaped passes pointer-shaped values to interface parameters;
// they ride the interface word and must NOT be flagged.
//
//dsps:hotpath
func pointerShaped(p *pair, ch chan int) {
	sink(p)
	sink(ch)
}
