package corpus

import "sync/atomic"

type gauge struct {
	val int64
}

func (g *gauge) add(n int64) { atomic.AddInt64(&g.val, n) }

// initVal writes the field before the gauge is shared; the suppression
// records the happens-before argument.
func (g *gauge) initVal(n int64) {
	//dspslint:ignore atomicmix constructor path, runs before the gauge is published to any goroutine
	g.val = n
}
