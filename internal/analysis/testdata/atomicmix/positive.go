// Package corpus is the atomicmix analyzer's test corpus.
package corpus

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	limit  int64
}

// bump updates hits atomically.
func (c *counters) bump() { atomic.AddInt64(&c.hits, 1) }

// read mixes in a plain load of the same field.
func (c *counters) read() int64 {
	return c.hits // want: atomicmix
}

// reset mixes in a plain store.
func (c *counters) reset() {
	c.hits = 0 // want: atomicmix
}

// missCount is all-atomic and must NOT be flagged.
func (c *counters) missCount() int64 { return atomic.LoadInt64(&c.misses) }

func (c *counters) miss() { atomic.AddInt64(&c.misses, 1) }

// limitCheck uses limit only with plain accesses — consistent, must NOT be
// flagged.
func (c *counters) limitCheck() bool { return c.limit > 0 }

func (c *counters) setLimit(v int64) { c.limit = v }
