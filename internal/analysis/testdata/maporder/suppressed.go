package corpus

// drainIndependent iterates a map and sends, but each target consumes
// independently so cross-key order is immaterial; the suppression records
// that argument.
func drainIndependent(byTarget map[string][]int, sinks map[string]chan []int) {
	//dspslint:ignore maporder per-target batches are independent; no cross-target ordering is observable
	for tgt, batch := range byTarget {
		sinks[tgt] <- batch
	}
}
