// Package corpus is the maporder analyzer's test corpus.
//
//dsps:deterministic
package corpus

import "fmt"

type emitter struct{}

func (emitter) Emit(vs ...any) {}

// emitPerKey externalizes map order through an Emit call.
func emitPerKey(m map[string]int, out emitter) {
	for k, v := range m { // want: maporder
		out.Emit(k, v)
	}
}

// appendReturned externalizes map order through the returned slice.
func appendReturned(m map[string]int) []int {
	var out []int
	for _, v := range m { // want: maporder
		out = append(out, v)
	}
	return out
}

// appendNamedResult externalizes map order through a named result.
func appendNamedResult(m map[string]int) (vals []int) {
	for _, v := range m { // want: maporder
		vals = append(vals, v)
	}
	return
}

// printPerKey externalizes map order through output.
func printPerKey(m map[string]int) {
	for k := range m { // want: maporder
		fmt.Println(k)
	}
}

// sendPerKey externalizes map order through a channel.
func sendPerKey(m map[string]int, ch chan string) {
	for k := range m { // want: maporder
		ch <- k
	}
}

// sumValues is order-insensitive and must NOT be flagged.
func sumValues(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// appendLocal appends to a slice that never escapes via return; sorted by
// the caller of its own accord, so it must NOT be flagged.
func appendLocal(m map[string]int, sink *[]int) {
	var keys []int
	for _, v := range m {
		keys = append(keys, v)
	}
	*sink = keys
}
