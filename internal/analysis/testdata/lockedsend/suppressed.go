package corpus

// notifyUnderLock keeps a justified send under the lock: the channel is
// buffered at the maximum number of notifications and drained by a
// dedicated goroutine that never takes this lock.
func (r *registry) notifyUnderLock(v int) {
	r.mu.Lock()
	//dspslint:ignore lockedsend buffered at max notifications; drain side never takes r.mu
	r.ch <- v
	r.mu.Unlock()
}
