// Package corpus is the lockedsend analyzer's test corpus.
package corpus

import (
	"sync"
	"time"
)

type registry struct {
	mu      sync.Mutex
	rw      sync.RWMutex
	entries map[string]int
	ch      chan int
	wg      sync.WaitGroup
}

// sendUnderLock is the classic straight-line deadlock shape.
func (r *registry) sendUnderLock(v int) {
	r.mu.Lock()
	r.ch <- v // want: lockedsend
	r.mu.Unlock()
}

// recvUnderLock blocks on a receive while holding the lock.
func (r *registry) recvUnderLock() int {
	r.mu.Lock()
	v := <-r.ch // want: lockedsend
	r.mu.Unlock()
	return v
}

// selectUnderLock has no default case, so it can block under the lock.
func (r *registry) selectUnderLock(v int) {
	r.mu.Lock()
	select { // want: lockedsend
	case r.ch <- v:
	case <-time.After(time.Second):
	}
	r.mu.Unlock()
}

// sleepUnderRLock serializes every reader behind the sleep.
func (r *registry) sleepUnderRLock() {
	r.rw.RLock()
	time.Sleep(time.Millisecond) // want: lockedsend
	r.rw.RUnlock()
}

// waitInBranch blocks in a nested branch while the lock is held.
func (r *registry) waitInBranch(cond bool) {
	r.mu.Lock()
	if cond {
		r.wg.Wait() // want: lockedsend (nested block inherits the held set)
	}
	r.mu.Unlock()
}

// sendAfterUnlock is the correct shape and must NOT be flagged.
func (r *registry) sendAfterUnlock(v int) {
	r.mu.Lock()
	r.entries["k"] = v
	r.mu.Unlock()
	r.ch <- v
}

// nonBlockingUnderLock uses a select with default — cannot block, must NOT
// be flagged.
func (r *registry) nonBlockingUnderLock(v int) {
	r.mu.Lock()
	select {
	case r.ch <- v:
	default:
	}
	r.mu.Unlock()
}

// deferredUnlock is out of scope by design (no deferred-unlock analysis):
// must NOT be flagged.
func (r *registry) deferredUnlock(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v
}

// unlockInBranchThenSend: the send in the sibling branch still holds the
// lock copy-tracked into that branch.
func (r *registry) unlockInBranchThenSend(cond bool, v int) {
	r.mu.Lock()
	if cond {
		r.mu.Unlock()
		r.ch <- v
		return
	}
	r.ch <- v // want: lockedsend
	r.mu.Unlock()
}

// methodValueRef stores r.mu.Lock as a func value: a reference, not an
// acquisition — the send below runs with no lock held and must NOT be
// flagged.
func (r *registry) methodValueRef(v int) func() {
	hook := r.mu.Lock
	r.ch <- v
	return hook
}
