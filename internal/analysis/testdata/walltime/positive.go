// Package corpus is the walltime analyzer's test corpus: a seeded
// time.Now() injected into an annotated hot-path function must be caught.
package corpus

import "time"

type clockHolder struct {
	stamp int64
	now   func() time.Time
}

// stampEnvelope simulates the engine's per-envelope stamping path.
//
//dsps:hotpath
func (c *clockHolder) stampEnvelope() {
	c.stamp = time.Now().UnixNano() // want: walltime
}

// ageOf is hot-path and reads the wall clock twice over.
//
//dsps:hotpath
func ageOf(t time.Time) (time.Duration, time.Duration) {
	return time.Since(t), time.Until(t) // want: walltime ×2
}

// storeClock smuggles the wall clock in as a function value.
//
//dsps:hotpath
func (c *clockHolder) storeClock() {
	c.now = time.Now // want: walltime
}

// coldPath has no annotation: wall-clock reads are fine off the data
// plane, so this must NOT be flagged.
func coldPath() int64 {
	return time.Now().UnixNano()
}

// timerPark is hot-path but only parks on a timer channel, which is the
// allowed blocked-sub-path idiom; time.After must NOT be flagged.
//
//dsps:hotpath
func timerPark() {
	<-time.After(time.Millisecond)
}

// hotRoot reaches stampDeep two calls down the static call graph; the
// transitive wall-clock read must be reported with the witness chain.
//
//dsps:hotpath
func hotRoot(c *clockHolder) {
	middle(c)
}

func middle(c *clockHolder) {
	stampDeep(c)
}

func stampDeep(c *clockHolder) {
	c.stamp = time.Now().UnixNano() // want: walltime (transitive, two calls below the root)
}

// closureInHot returns a literal that runs on the caller's goroutine, so
// its body is part of the hot path and the read inside must be flagged.
//
//dsps:hotpath
func closureInHot(c *clockHolder) func() {
	return func() {
		c.stamp = time.Now().UnixNano() // want: walltime (closure body)
	}
}

// spawnedClock hands the literal to a new goroutine: it leaves the hot
// goroutine, so the read inside must NOT be flagged.
//
//dsps:hotpath
func spawnedClock(c *clockHolder) {
	go func() {
		c.stamp = time.Now().UnixNano()
	}()
}
