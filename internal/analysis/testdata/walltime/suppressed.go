package corpus

import "time"

// seedClock initializes the coarse clock before readers start; the single
// wall-clock read is the documented exception and carries a justified
// suppression.
//
//dsps:hotpath
func (c *clockHolder) seedClock() {
	//dspslint:ignore walltime one-time clock seeding before any reader starts, not per-tuple
	c.stamp = time.Now().UnixNano()
}

// sweepCutoff suppresses with a trailing comment on the offending line.
//
//dsps:hotpath
func sweepCutoff(timeout time.Duration) time.Time {
	return time.Now().Add(-timeout) //dspslint:ignore walltime timeout expiry tolerates no coarse-tick skew
}
