package corpus

import "sync"

type lockC struct{ mu sync.Mutex }

type lockD struct{ mu sync.Mutex }

var c lockC

var d lockD

// drainCD and drainDC disagree on acquisition order; the cycle is a
// shutdown-only path and carries a justified suppression at the witness
// edge the analyzer reports.
func drainCD() {
	c.mu.Lock()
	//dspslint:ignore lockorder shutdown-only drain; both locks are quiesced before this path runs
	d.mu.Lock()
	d.mu.Unlock()
	c.mu.Unlock()
}

func drainDC() {
	d.mu.Lock()
	c.mu.Lock()
	c.mu.Unlock()
	d.mu.Unlock()
}
