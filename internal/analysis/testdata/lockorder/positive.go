// Package corpus is the lockorder analyzer's test corpus: functions that
// acquire the same two lock classes in opposite orders — directly or
// through a callee — form a cycle that must be reported, and re-entrant
// acquisition of one mutex must be caught outright.
package corpus

import "sync"

type accountA struct{ mu sync.Mutex }

type accountB struct{ mu sync.Mutex }

var a accountA

var b accountB

// transferAB acquires A then B.
func transferAB() {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// transferBA acquires B and then — through a helper, with the unlock
// deferred so B stays held — A: the reverse order, closing the cycle
// interprocedurally.
func transferBA() {
	b.mu.Lock()
	defer b.mu.Unlock()
	lockAHelper()
}

func lockAHelper() {
	a.mu.Lock()
	a.mu.Unlock()
}

// relock re-acquires a mutex this function already holds.
func relock() {
	a.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
}

// methodValueRef stores a.mu.Lock as a func value: a reference, not an
// acquisition — it must NOT establish an order edge or a held lock.
func methodValueRef() func() {
	f := a.mu.Lock
	return f
}

// shardedOK locks two instances of the same class; instance identity is
// beyond static reach, so same-class pairs must NOT be reported.
type shard struct{ mu sync.Mutex }

func shardedOK(s1, s2 *shard) {
	s1.mu.Lock()
	s2.mu.Lock()
	s2.mu.Unlock()
	s1.mu.Unlock()
}
