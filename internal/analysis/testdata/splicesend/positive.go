// Package corpus is the splicesend analyzer's test corpus.
package corpus

import "sync"

type worker struct {
	inCh chan []int
	dead bool
}

type topo struct {
	spliceMu sync.RWMutex
	mu       sync.Mutex
	targets  []*worker
}

// bareSend hands a batch over with no lock at all: a concurrent retire can
// reclaim the queue mid-send.
func (t *topo) bareSend(w *worker, b []int) {
	w.inCh <- b // want: splicesend
}

// wrongLock holds a lock, but not the splice lock.
func (t *topo) wrongLock(w *worker, b []int) {
	t.mu.Lock()
	w.inCh <- b // want: splicesend
	t.mu.Unlock()
}

// unlockedTail releases the read lock before the send lands.
func (t *topo) unlockedTail(w *worker, b []int) {
	t.spliceMu.RLock()
	dead := w.dead
	t.spliceMu.RUnlock()
	if !dead {
		w.inCh <- b // want: splicesend
	}
}

// selectSend blocks in a comm clause without the lock.
func (t *topo) selectSend(w *worker, b []int, stop chan struct{}) {
	select {
	case w.inCh <- b: // want: splicesend
	case <-stop:
	}
}

// readLockedSend is the engine's producer shape and must NOT be flagged.
func (t *topo) readLockedSend(w *worker, b []int) {
	t.spliceMu.RLock()
	if !w.dead {
		w.inCh <- b
	}
	t.spliceMu.RUnlock()
}

// writeLockedSend holds the exclusive splice lock: also fine.
func (t *topo) writeLockedSend(w *worker, b []int) {
	t.spliceMu.Lock()
	w.inCh <- b
	t.spliceMu.Unlock()
}

// deferredSpliceUnlock keeps the lock to function exit: the send is held.
func (t *topo) deferredSpliceUnlock(w *worker, b []int) {
	t.spliceMu.RLock()
	defer t.spliceMu.RUnlock()
	w.inCh <- b
}

// selectLockedSend takes the lock inside the comm body before sending —
// the ticker's self-send shape; must NOT be flagged.
func (t *topo) selectLockedSend(w *worker, b []int, tick chan struct{}) {
	for {
		select {
		case <-tick:
			t.spliceMu.RLock()
			if w.dead {
				t.spliceMu.RUnlock()
				return
			}
			w.inCh <- b
			t.spliceMu.RUnlock()
		}
	}
}

// otherChannel is not a fan-out queue; ordinary sends stay out of scope.
func (t *topo) otherChannel(out chan []int, b []int) {
	out <- b
}
