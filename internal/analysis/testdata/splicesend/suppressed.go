package corpus

// seedQueue fills a task's queue before its executor starts, during
// single-threaded topology construction: no splice can race it, so the
// unlocked send is justified.
func (t *topo) seedQueue(w *worker, b []int) {
	//dspslint:ignore splicesend construction-time fill; executors and splicers have not started
	w.inCh <- b
}
