package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// A Package is one type-checked analysis unit: a package's compiled files
// plus (when tests are included) its in-package test files; external test
// packages (package foo_test) form their own unit.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints; analysis continues on
	// partial information, but the driver surfaces them and fails the run.
	TypeErrors []error
	// Deterministic marks packages under the seeded-determinism contract.
	Deterministic bool
}

// A Loader discovers, parses, and type-checks packages of one module using
// only the standard library (source importer — no x/tools).
type Loader struct {
	Root         string // module root: the directory holding go.mod
	Module       string // module path from go.mod
	WorkDir      string // directory patterns are resolved against
	IncludeTests bool
	Fset         *token.FileSet

	imp types.ImporterFrom
}

// NewLoader locates the enclosing module of dir and prepares a loader.
func NewLoader(dir string, includeTests bool) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("dspslint: no go.mod found above %s", abs)
		}
		root = parent
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:         root,
		Module:       module,
		WorkDir:      abs,
		IncludeTests: includeTests,
		Fset:         fset,
	}
	l.imp = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("dspslint: no module directive in %s", path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom. The source importer resolves
// relative to a source directory; pinning it to the module root keeps
// module-internal import paths resolvable regardless of the process's
// working directory. Every import — including an external test package's
// import of the package under test — flows through the one source-importer
// universe, so type identity stays consistent across units. (The known
// limit: an external test package cannot see helpers defined in in-package
// test files; this repo has none, and such a reference would surface as a
// type error rather than pass silently.)
func (l *Loader) ImportFrom(path, _ string, mode types.ImportMode) (*types.Package, error) {
	return l.imp.ImportFrom(path, l.Root, mode)
}

// Load resolves the patterns (a directory, or a `dir/...` subtree) and
// returns the type-checked packages in deterministic order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

// expand resolves patterns to package directories, sorted and deduplicated.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.WorkDir, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("dspslint: %s: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("dspslint: %s is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// loadDir parses and type-checks one directory, producing the compiled
// package (with in-package test files when enabled) and, separately, the
// external test package if one exists.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Split into the compiled package (plus in-package test files) and the
	// external test package. The base package name comes from the first
	// non-test file; a directory holding only test files keeps whatever
	// name those files declare.
	baseName := ""
	for i, f := range files {
		if !strings.HasSuffix(names[i], "_test.go") {
			baseName = f.Name.Name
			break
		}
	}
	var baseFiles, extFiles []*ast.File
	for _, f := range files {
		name := f.Name.Name
		switch {
		case baseName == "" && strings.HasSuffix(name, "_test"):
			extFiles = append(extFiles, f)
		case baseName != "" && name == baseName+"_test":
			extFiles = append(extFiles, f)
		default:
			baseFiles = append(baseFiles, f)
		}
	}
	path := l.importPathFor(dir)
	var out []*Package
	if len(baseFiles) > 0 {
		out = append(out, l.check(path, dir, baseFiles))
	}
	if len(extFiles) > 0 {
		out = append(out, l.check(path+"_test", dir, extFiles))
	}
	return out, nil
}

// check type-checks one unit, collecting (rather than failing on) type
// errors so analyzers can still run on partial information.
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	pkg := &Package{ImportPath: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info) // errors land in pkg.TypeErrors
	pkg.Types = tpkg
	pkg.Info = info
	for _, f := range files {
		if fileDeterministic(f) {
			pkg.Deterministic = true
		}
	}
	return pkg
}
