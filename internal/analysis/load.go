package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// A Package is one type-checked analysis unit: a package's compiled files
// plus (when tests are included) its in-package test files; external test
// packages (package foo_test) form their own unit.
type Package struct {
	ImportPath string
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
	// TypeErrors collects type-checker complaints; analysis continues on
	// partial information, but the driver surfaces them and fails the run.
	TypeErrors []error
	// Deterministic marks packages under the seeded-determinism contract.
	Deterministic bool
	// OwnedGoroutines marks packages whose `go` statements must carry a
	// visible stop/wait path (//dsps:owned-goroutines or built-in list).
	OwnedGoroutines bool
}

// A Loader discovers, parses, and type-checks packages of one module using
// only the standard library (source importer — no x/tools).
//
// Load is two-phase and parallel: every package directory is parsed
// concurrently, then units are type-checked in dependency waves with up
// to GOMAXPROCS checkers in flight. A unit that finishes checking
// registers its *types.Package in the self-serve table, so a later unit
// importing it gets the already-checked package instead of the source
// importer re-checking the same directory from scratch — module
// packages are type-checked exactly once per run. Imports the table
// cannot serve (stdlib, module packages outside the requested patterns,
// the rare test-import cycle) fall through to the stdlib source
// importer, which caches per path as before.
type Loader struct {
	Root         string // module root: the directory holding go.mod
	Module       string // module path from go.mod
	WorkDir      string // directory patterns are resolved against
	IncludeTests bool
	Fset         *token.FileSet

	// impMu guards the source importer and the self-serve table: the
	// importer is not safe for concurrent use, and checkers on other
	// goroutines publish into selfServe.
	impMu     sync.Mutex
	imp       types.ImporterFrom
	selfServe map[string]*types.Package
}

// NewLoader locates the enclosing module of dir and prepares a loader.
func NewLoader(dir string, includeTests bool) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("dspslint: no go.mod found above %s", abs)
		}
		root = parent
	}
	module, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	l := &Loader{
		Root:         root,
		Module:       module,
		WorkDir:      abs,
		IncludeTests: includeTests,
		Fset:         fset,
		selfServe:    map[string]*types.Package{},
	}
	l.imp = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// modulePath reads the module path from a go.mod file.
func modulePath(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("dspslint: no module directive in %s", path)
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.Root, 0)
}

// ImportFrom implements types.ImporterFrom. Already-checked units are
// served from the self-serve table; everything else goes through the one
// source-importer universe, resolved relative to the module root so
// module-internal import paths work regardless of the process's working
// directory. Because wave scheduling checks a unit only after its
// module-internal dependencies registered themselves, type identity
// stays consistent across units. (One visible improvement over the pure
// source importer: an external test package now sees helpers defined in
// its package's in-package test files, matching `go test` semantics.)
func (l *Loader) ImportFrom(path, _ string, mode types.ImportMode) (*types.Package, error) {
	l.impMu.Lock()
	defer l.impMu.Unlock()
	if pkg, ok := l.selfServe[path]; ok && pkg != nil && pkg.Complete() {
		return pkg, nil
	}
	return l.imp.ImportFrom(path, l.Root, mode)
}

// parsedUnit is one parsed-but-unchecked analysis unit.
type parsedUnit struct {
	path    string // import path ("…_test" for external test units)
	dir     string
	files   []*ast.File
	imports map[string]bool // module-internal imports (base paths)
	base    bool            // compiled package (importable), not an external test unit
}

// Load resolves the patterns (a directory, or a `dir/...` subtree) and
// returns the type-checked packages in deterministic order.
func (l *Loader) Load(patterns []string) ([]*Package, error) {
	dirs, err := l.expand(patterns)
	if err != nil {
		return nil, err
	}

	// Phase 1: parse every directory concurrently. The FileSet is safe
	// for concurrent AddFile; each directory's parse is independent.
	unitsPerDir := make([][]*parsedUnit, len(dirs))
	errs := make([]error, len(dirs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism())
	for i, dir := range dirs {
		wg.Add(1)
		go func(i int, dir string) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			unitsPerDir[i], errs[i] = l.parseDir(dir)
		}(i, dir)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var units []*parsedUnit
	for _, us := range unitsPerDir {
		units = append(units, us...)
	}

	// Phase 2: type-check in dependency waves, up to GOMAXPROCS units in
	// flight, publishing each finished base unit for the importer.
	checked := l.checkUnits(units)

	// Return packages in the original deterministic (sorted-dir) order.
	out := make([]*Package, 0, len(units))
	for _, u := range units {
		out = append(out, checked[u])
	}
	return out, nil
}

// parallelism is the checker/parser pool size.
func parallelism() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 1
}

// checkUnits type-checks units in dependency order: a unit whose
// module-internal imports are all registered can start; units in a
// dependency cycle through test imports (legal in Go, impossible for
// compiled packages) are checked last and resolve those imports through
// the source importer instead.
func (l *Loader) checkUnits(units []*parsedUnit) map[*parsedUnit]*Package {
	byPath := map[string]*parsedUnit{}
	for _, u := range units {
		if u.base {
			byPath[u.path] = u
		}
	}
	// deps: edges to in-set module units this unit must wait for.
	deps := map[*parsedUnit][]*parsedUnit{}
	indeg := map[*parsedUnit]int{}
	dependents := map[*parsedUnit][]*parsedUnit{}
	for _, u := range units {
		for imp := range u.imports {
			if d, ok := byPath[imp]; ok && d != u {
				deps[u] = append(deps[u], d)
				indeg[u]++
				dependents[d] = append(dependents[d], u)
			}
		}
		// External test units also wait for their base package.
		if !u.base {
			if d, ok := byPath[strings.TrimSuffix(u.path, "_test")]; ok {
				deps[u] = append(deps[u], d)
				indeg[u]++
				dependents[d] = append(dependents[d], u)
			}
		}
	}

	checked := make(map[*parsedUnit]*Package, len(units))
	var mu sync.Mutex
	var wg sync.WaitGroup
	sem := make(chan struct{}, parallelism())
	var schedule func(u *parsedUnit)
	schedule = func(u *parsedUnit) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			pkg := l.check(u.path, u.dir, u.files)
			<-sem
			mu.Lock()
			checked[u] = pkg
			if u.base {
				l.impMu.Lock()
				l.selfServe[u.path] = pkg.Types
				l.impMu.Unlock()
			}
			var ready []*parsedUnit
			for _, d := range dependents[u] {
				indeg[d]--
				if indeg[d] == 0 {
					ready = append(ready, d)
				}
			}
			mu.Unlock()
			for _, d := range ready {
				schedule(d)
			}
		}()
	}
	var roots []*parsedUnit
	for _, u := range units {
		if indeg[u] == 0 {
			roots = append(roots, u)
		}
	}
	for _, u := range roots {
		schedule(u)
	}
	wg.Wait()

	// Anything still unchecked sits in a test-import cycle: check it
	// serially; its cyclic imports fall through to the source importer.
	for _, u := range units {
		if checked[u] == nil {
			checked[u] = l.check(u.path, u.dir, u.files)
		}
	}
	return checked
}

// expand resolves patterns to package directories, sorted and deduplicated.
func (l *Loader) expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.WorkDir, base)
		}
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("dspslint: %s: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("dspslint: %s is not a directory", pat)
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// importPathFor maps a directory to its import path within the module.
func (l *Loader) importPathFor(dir string) string {
	rel, err := filepath.Rel(l.Root, dir)
	if err != nil || rel == "." {
		return l.Module
	}
	return l.Module + "/" + filepath.ToSlash(rel)
}

// parseDir parses one directory into its analysis units: the compiled
// package (with in-package test files when enabled) and, separately, the
// external test package if one exists.
func (l *Loader) parseDir(dir string) ([]*parsedUnit, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if !l.IncludeTests && strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	// Split into the compiled package (plus in-package test files) and the
	// external test package. The base package name comes from the first
	// non-test file; a directory holding only test files keeps whatever
	// name those files declare.
	baseName := ""
	for i, f := range files {
		if !strings.HasSuffix(names[i], "_test.go") {
			baseName = f.Name.Name
			break
		}
	}
	var baseFiles, extFiles []*ast.File
	for _, f := range files {
		name := f.Name.Name
		switch {
		case baseName == "" && strings.HasSuffix(name, "_test"):
			extFiles = append(extFiles, f)
		case baseName != "" && name == baseName+"_test":
			extFiles = append(extFiles, f)
		default:
			baseFiles = append(baseFiles, f)
		}
	}
	path := l.importPathFor(dir)
	var out []*parsedUnit
	if len(baseFiles) > 0 {
		out = append(out, &parsedUnit{
			path: path, dir: dir, files: baseFiles, base: true,
			imports: l.moduleImports(baseFiles),
		})
	}
	if len(extFiles) > 0 {
		out = append(out, &parsedUnit{
			path: path + "_test", dir: dir, files: extFiles,
			imports: l.moduleImports(extFiles),
		})
	}
	return out, nil
}

// moduleImports collects the module-internal import paths of a file set.
func (l *Loader) moduleImports(files []*ast.File) map[string]bool {
	out := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == l.Module || strings.HasPrefix(path, l.Module+"/") {
				out[path] = true
			}
		}
	}
	return out
}

// check type-checks one unit, collecting (rather than failing on) type
// errors so analyzers can still run on partial information.
func (l *Loader) check(path, dir string, files []*ast.File) *Package {
	pkg := &Package{ImportPath: path, Dir: dir, Files: files}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info) // errors land in pkg.TypeErrors
	pkg.Types = tpkg
	pkg.Info = info
	for _, f := range files {
		if fileDeterministic(f) {
			pkg.Deterministic = true
		}
		if fileOwnedGoroutines(f) {
			pkg.OwnedGoroutines = true
		}
	}
	return pkg
}
