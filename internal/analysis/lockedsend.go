package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// LockedSend flags channel operations and other blocking calls lexically
// between mu.Lock() and the matching mu.Unlock() in the same function —
// the straight-line shape of a classic deadlock: a send blocks for a
// consumer that needs the same lock to make progress. The analyzer tracks
// explicit Lock/Unlock pairs statement-by-statement (descending into
// nested if/for/switch blocks); `defer mu.Unlock()` is deliberately out of
// scope — the whole function body would be "under the lock" and the
// sharded-acker style of tight, explicit critical sections is exactly what
// the engine's lock discipline prescribes.
var LockedSend = &Analyzer{
	Name: "lockedsend",
	Doc:  "channel send/receive or blocking call between mu.Lock() and mu.Unlock()",
	Run:  runLockedSend,
}

func runLockedSend(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanLockedBlock(pass, fn.Body.List, map[string]bool{})
		}
	}
}

// scanLockedBlock walks one statement list in order, maintaining the set of
// mutexes held (keyed by the receiver expression's source text). Nested
// control-flow blocks are scanned with a copy of the held set; function
// literals are skipped (they run later, not under this critical section).
func scanLockedBlock(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if recv, kind, ok := lockCall(pass, stmt); ok {
			switch kind {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		// `defer mu.Unlock()` ends tracking: the critical section now
		// spans to function exit, which is exactly the shape this
		// straight-line analyzer deliberately leaves out of scope.
		if d, ok := stmt.(*ast.DeferStmt); ok {
			if sel, ok := d.Call.Fun.(*ast.SelectorExpr); ok {
				if _, kind, ok := lockCall(pass, &ast.ExprStmt{X: d.Call}); ok &&
					(kind == "Unlock" || kind == "RUnlock") {
					delete(held, exprKey(sel.X))
				}
			}
		}
		if len(held) > 0 {
			reportBlocking(pass, stmt, held)
		}
		// Descend into nested blocks with an independent copy: a branch
		// that unlocks must not clear the lock for its siblings.
		for _, body := range nestedBlocks(stmt) {
			scanLockedBlock(pass, body, copyHeld(held))
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// nestedBlocks returns the statement lists nested directly inside stmt.
func nestedBlocks(stmt ast.Stmt) [][]ast.Stmt {
	var out [][]ast.Stmt
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		out = append(out, s.List)
	case *ast.IfStmt:
		out = append(out, s.Body.List)
		if block, ok := s.Else.(*ast.BlockStmt); ok {
			out = append(out, block.List)
		} else if s.Else != nil {
			out = append(out, []ast.Stmt{s.Else})
		}
	case *ast.ForStmt:
		out = append(out, s.Body.List)
	case *ast.RangeStmt:
		out = append(out, s.Body.List)
	case *ast.SwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				out = append(out, cc.Body)
			}
		}
	}
	return out
}

// lockCall matches a statement of the form `expr.Lock()` / `expr.Unlock()`
// (and the RW variants) where the method belongs to sync.Mutex or
// sync.RWMutex, returning the receiver's source-text key.
func lockCall(pass *Pass, stmt ast.Stmt) (recv, kind string, ok bool) {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return "", "", false
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return "", "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", "", false
	}
	full := fn.FullName()
	if !strings.HasPrefix(full, "(*sync.Mutex).") && !strings.HasPrefix(full, "(*sync.RWMutex).") {
		return "", "", false
	}
	return exprKey(sel.X), name, true
}

// exprKey renders an expression as a stable textual key (s.mu, a.shards[i].mu).
func exprKey(e ast.Expr) string {
	var b strings.Builder
	writeExprKey(&b, e)
	return b.String()
}

func writeExprKey(b *strings.Builder, e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		b.WriteString(x.Name)
	case *ast.SelectorExpr:
		writeExprKey(b, x.X)
		b.WriteString(".")
		b.WriteString(x.Sel.Name)
	case *ast.IndexExpr:
		writeExprKey(b, x.X)
		b.WriteString("[")
		writeExprKey(b, x.Index)
		b.WriteString("]")
	case *ast.StarExpr:
		b.WriteString("*")
		writeExprKey(b, x.X)
	case *ast.ParenExpr:
		writeExprKey(b, x.X)
	case *ast.CallExpr:
		writeExprKey(b, x.Fun)
		b.WriteString("()")
	case *ast.BasicLit:
		b.WriteString(x.Value)
	default:
		b.WriteString("?")
	}
}

// reportBlocking flags blocking operations inside stmt (not descending into
// nested blocks — scanLockedBlock recurses into those itself — nor into
// function literals, which execute outside the critical section).
func reportBlocking(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	locks := heldList(held)
	// Only inspect the statement's own expressions: pull nested block
	// statements out so they are not double-visited.
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send while holding %s; the consumer may need the same lock", locks)
			return false
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				pass.Reportf(n.Pos(), "channel receive while holding %s; the producer may need the same lock", locks)
				return false
			}
		case *ast.SelectStmt:
			if selectCanBlock(n) {
				pass.Reportf(n.Pos(), "blocking select while holding %s; add a default case or move it outside the critical section", locks)
			}
			return false // comm clauses inspected via selectCanBlock only
		case *ast.CallExpr:
			if name := blockingCallName(pass, n); name != "" {
				pass.Reportf(n.Pos(), "%s while holding %s; sleeping or waiting under a lock serializes every contender", name, locks)
			}
		}
		return true
	})
}

// selectCanBlock reports whether a select statement has no default clause.
func selectCanBlock(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return false
		}
	}
	return true
}

// blockingCallName matches well-known blocking calls: time.Sleep and
// sync.WaitGroup.Wait.
func blockingCallName(pass *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if sel.Sel.Name == "Sleep" && pass.pkgNamed(sel.X, "time") {
		return "time.Sleep"
	}
	if sel.Sel.Name == "Wait" {
		if fn, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok &&
			strings.HasPrefix(fn.FullName(), "(*sync.WaitGroup).") {
			return "sync.WaitGroup.Wait"
		}
	}
	return ""
}

func heldList(held map[string]bool) string {
	names := make([]string, 0, len(held))
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names) // deterministic message text regardless of map order
	return strings.Join(names, ", ")
}
