package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GlobalRand bans the process-global math/rand source — and shared
// package-level *rand.Rand state — inside determinism-marked packages.
// Every chaos replay, fault schedule, and training run reproduces from an
// explicit seed; one rand.Float64() drawn from the global source ties a
// result to whatever else the process randomized and breaks replay-by-seed.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "global math/rand source or shared package-level rand.Rand in a deterministic package",
	Run:  runGlobalRand,
}

// globalRandAllowed are the math/rand package-level functions that do NOT
// touch the global source: constructors taking an explicit seed or source.
var globalRandAllowed = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runGlobalRand(pass *Pass) {
	if !pass.Deterministic {
		// Determinism taint: functions here that a deterministic package
		// statically reaches still run under seeded replay, so their
		// global-source draws break it just the same.
		for _, f := range pass.Files {
			for _, decl := range f.Decls {
				fn, ok := decl.(*ast.FuncDecl)
				if !ok || fn.Body == nil {
					continue
				}
				node := pass.Mod.Graph.NodeAt(fn)
				if node == nil || !node.DetTainted {
					continue
				}
				ast.Inspect(fn.Body, func(n ast.Node) bool {
					if sel, ok := globalRandUse(pass, n); ok {
						pass.Reportf(sel.Pos(),
							"rand.%s draws from the process-global source in %s, reachable from deterministic code via %s; use an explicitly seeded rand.New(rand.NewSource(seed))",
							sel.Sel.Name, funcLabel(fn), node.DetChain())
					}
					return true
				})
			}
		}
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if sel, ok := globalRandUse(pass, n); ok {
					pass.Reportf(sel.Pos(),
						"rand.%s draws from the process-global source; use an explicitly seeded rand.New(rand.NewSource(seed))",
						sel.Sel.Name)
				}
			case *ast.GenDecl:
				// Package-level var of type rand.Rand / *rand.Rand: shared
				// mutable state whose draw order depends on goroutine
				// interleaving even when seeded.
				if n.Tok != token.VAR {
					return true
				}
				for _, spec := range n.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj, ok := pass.Info.Defs[name].(*types.Var)
						if !ok || obj.Parent() != pass.Pkg.Scope() {
							continue
						}
						if isRandRand(obj.Type()) {
							pass.Reportf(name.Pos(),
								"package-level %s is a shared rand.Rand; draw order depends on scheduling — keep generators component-local",
								name.Name)
						}
					}
				}
			}
			return true // keep walking: var initializers may call rand.*
		})
	}
}

// globalRandUse matches a selector that draws from the process-global
// math/rand source.
func globalRandUse(pass *Pass, n ast.Node) (*ast.SelectorExpr, bool) {
	sel, ok := n.(*ast.SelectorExpr)
	if !ok || globalRandAllowed[sel.Sel.Name] {
		return nil, false
	}
	if !pass.pkgNamed(sel.X, "math/rand") && !pass.pkgNamed(sel.X, "math/rand/v2") {
		return nil, false
	}
	// Only package-level functions draw from the global source; selecting
	// a type (rand.Rand, rand.Source) or a constant is fine.
	if _, ok := pass.Info.Uses[sel.Sel].(*types.Func); !ok {
		return nil, false
	}
	return sel, true
}

// isRandRand reports whether t is math/rand.Rand (possibly behind a
// pointer).
func isRandRand(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Name() != "Rand" {
		return false
	}
	path := obj.Pkg().Path()
	return path == "math/rand" || strings.HasPrefix(path, "math/rand/")
}
