package analysis

import (
	"encoding/json"
	"fmt"
	"os"
)

// VerifyBaseline checks a completed run against the committed baseline
// (LINT_BASELINE.json) and returns one message per drift:
//
//   - A recorded suppression whose (analyzer, position) no longer
//     matches a live //dspslint:ignore-covered finding is STALE: the
//     code moved or the directive was deleted, and the baseline still
//     vouches for it. Before v2 this drifted silently; now it fails the
//     run until the baseline is regenerated (`make lint-baseline`).
//   - A live suppression that the baseline does not record is
//     UNRECORDED drift in the other direction: a new //dspslint:ignore
//     landed without the baseline diff that makes suppression creep
//     reviewable.
//
// The error return is reserved for an unreadable or unparsable baseline
// file.
func VerifyBaseline(path string, r *Report) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	var base Summary
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}

	type key struct{ analyzer, position string }
	current := map[key]bool{}
	for _, d := range r.Suppressed {
		current[key{d.Analyzer, d.Position}] = true
	}
	recorded := map[key]bool{}
	var drift []string
	for _, s := range base.Suppressions {
		recorded[key{s.Analyzer, s.Position}] = true
		if !current[key{s.Analyzer, s.Position}] {
			drift = append(drift, fmt.Sprintf(
				"stale suppression: %s (%s) is recorded in %s but no //dspslint:ignore directive covers a finding there anymore; regenerate with `make lint-baseline`",
				s.Position, s.Analyzer, path))
		}
	}
	for _, d := range r.Suppressed {
		if !recorded[key{d.Analyzer, d.Position}] {
			drift = append(drift, fmt.Sprintf(
				"unrecorded suppression: %s (%s) is suppressed in the source but missing from %s; regenerate with `make lint-baseline`",
				d.Position, d.Analyzer, path))
		}
	}
	return drift, nil
}
