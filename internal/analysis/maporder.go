package analysis

import (
	"go/ast"
	"go/types"
)

// MapOrder flags map iteration whose body externalizes the visit order in a
// determinism-marked package: emitting tuples, appending to a slice the
// function returns, or writing output. Go randomizes map iteration order
// per run, so any of these turns a seeded replay into a different
// tuple/byte sequence each execution. Order-insensitive bodies (summing,
// counting, building another map) are fine and not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "map iteration that emits, appends to a returned slice, or writes output in a deterministic package",
	Run:  runMapOrder,
}

// mapOrderEmitNames are method names whose call inside a map range means
// the iteration order escapes into the stream.
var mapOrderEmitNames = map[string]bool{"Emit": true, "EmitDirect": true}

// mapOrderWriteNames are io-style method names treated as output writes.
var mapOrderWriteNames = map[string]bool{"Write": true, "WriteString": true, "WriteByte": true, "Print": true, "Printf": true, "Println": true}

func runMapOrder(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			// In deterministic packages every function is checked; in
			// other packages only functions that deterministic code
			// statically reaches (determinism taint) — their emitted
			// order replays under the same seed contract.
			var node *FuncNode
			if !pass.Deterministic {
				node = pass.Mod.Graph.NodeAt(fn)
				if node == nil || !node.DetTainted {
					continue
				}
			}
			returned := returnedIdents(pass, fn)
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				t := pass.TypeOf(rs.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if msg := orderEscape(pass, rs.Body, returned); msg != "" {
					if node != nil {
						pass.Reportf(rs.Pos(),
							"map iteration %s in %s, reachable from deterministic code via %s; map order is randomized per run — collect and sort keys first",
							msg, funcLabel(fn), node.DetChain())
					} else {
						pass.Reportf(rs.Pos(),
							"map iteration %s; map order is randomized per run — collect and sort keys first", msg)
					}
				}
				return true
			})
		}
	}
}

// returnedIdents collects the objects of identifiers the function returns,
// including named result parameters: appending to one of these inside a
// map range makes the result order nondeterministic.
func returnedIdents(pass *Pass, fn *ast.FuncDecl) map[types.Object]bool {
	out := map[types.Object]bool{}
	if fn.Type.Results != nil {
		for _, fld := range fn.Type.Results.List {
			for _, name := range fld.Names {
				if obj := pass.Info.Defs[name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, e := range ret.Results {
			if id, ok := e.(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					out[obj] = true
				}
			}
		}
		return true
	})
	return out
}

// orderEscape scans a map-range body for order-externalizing operations and
// returns a description of the first one found ("" if none). Function
// literals are scanned too: a closure invoked per iteration externalizes
// order the same way.
func orderEscape(pass *Pass, body *ast.BlockStmt, returned map[types.Object]bool) string {
	msg := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt:
			msg = "sends on a channel"
		case *ast.AssignStmt:
			// x = append(x, ...) where x is returned by the function.
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					obj = pass.Info.Defs[id]
				}
				if obj != nil && returned[obj] {
					msg = "appends to returned slice " + id.Name
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch {
				case mapOrderEmitNames[sel.Sel.Name]:
					msg = "emits tuples (" + sel.Sel.Name + ")"
				case pass.pkgNamed(sel.X, "fmt"), mapOrderWriteNames[sel.Sel.Name] && isWriterish(pass, sel):
					msg = "writes output (" + sel.Sel.Name + ")"
				}
			}
		}
		return msg == ""
	})
	return msg
}

// isBuiltinAppend reports whether call is the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isWriterish reports whether sel's method belongs to an io.Writer-shaped
// receiver (has a Write method) so that strings.Builder.WriteString counts
// but an unrelated method that merely shares the name does not.
func isWriterish(pass *Pass, sel *ast.SelectorExpr) bool {
	t := pass.TypeOf(sel.X)
	if t == nil {
		return false
	}
	// Look for a Write method on the receiver (or its pointer type).
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "Write" {
				return true
			}
		}
	}
	return false
}
