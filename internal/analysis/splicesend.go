package analysis

import (
	"go/ast"
	"strings"
)

// SpliceSend enforces the elastic runtime's splice discipline: a send on a
// task input queue (a field named inCh, the grouping fan-out hand-off) must
// happen while the topology's splice lock (a sync.RWMutex field named
// spliceMu) is held. ScaleDown retires an executor by marking it dead under
// the splice write lock and then reclaiming its queue; a producer that
// hands a batch over without at least the read lock can race that sequence
// and land tuples in a reclaimed queue, silently breaking conservation.
//
// The check is naming-convention based (inCh / spliceMu are the engine's
// canonical names) and only fires in packages that declare a spliceMu, so
// unrelated code using an inCh field is left alone. Unlike lockedsend,
// `defer spliceMu.Unlock()` keeps the lock held for the rest of the
// function — here the question is "is the lock held at the send", not
// "does the critical section stay tight".
var SpliceSend = &Analyzer{
	Name: "splicesend",
	Doc:  "send on a task input queue (inCh) without holding the splice lock (spliceMu)",
	Run:  runSpliceSend,
}

func runSpliceSend(pass *Pass) {
	if !declaresSpliceMu(pass.Files) {
		return
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			scanSpliceBlock(pass, fn.Body.List, map[string]bool{})
		}
	}
}

// declaresSpliceMu reports whether any file declares an identifier named
// spliceMu (struct field or variable) — the gate that scopes the analyzer
// to the engine package and its corpus.
func declaresSpliceMu(files []*ast.File) bool {
	found := false
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			if found {
				return false
			}
			switch x := n.(type) {
			case *ast.Field:
				for _, name := range x.Names {
					if name.Name == "spliceMu" {
						found = true
					}
				}
			case *ast.ValueSpec:
				for _, name := range x.Names {
					if name.Name == "spliceMu" {
						found = true
					}
				}
			}
			return true
		})
	}
	return found
}

// scanSpliceBlock walks one statement list in order, maintaining the set of
// locks held, and flags inCh sends where no held lock is a spliceMu. Nested
// control-flow blocks inherit a copy of the held set; function literals are
// skipped (they run later, under whatever locks their caller holds).
func scanSpliceBlock(pass *Pass, stmts []ast.Stmt, held map[string]bool) {
	for _, stmt := range stmts {
		if recv, kind, ok := lockCall(pass, stmt); ok {
			switch kind {
			case "Lock", "RLock":
				held[recv] = true
			case "Unlock", "RUnlock":
				delete(held, recv)
			}
			continue
		}
		// `defer mu.Unlock()` releases at function exit: for the purposes
		// of "is the lock held at this send", it stays held.
		reportUnspliced(pass, stmt, held)
		for _, body := range nestedBlocks(stmt) {
			scanSpliceBlock(pass, body, copyHeld(held))
		}
		// Select comm clauses are scanned statement-by-statement (the comm
		// op first, then the body) so Lock/Unlock calls inside a case keep
		// tracking — the ticker's locked self-send lives in this shape.
		if sel, ok := stmt.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				cc, ok := c.(*ast.CommClause)
				if !ok {
					continue
				}
				var list []ast.Stmt
				if cc.Comm != nil {
					list = append(list, cc.Comm)
				}
				list = append(list, cc.Body...)
				scanSpliceBlock(pass, list, copyHeld(held))
			}
		}
	}
}

// spliceHeld reports whether any held lock key names a spliceMu.
func spliceHeld(held map[string]bool) bool {
	for k := range held {
		if k == "spliceMu" || strings.HasSuffix(k, ".spliceMu") {
			return true
		}
	}
	return false
}

// reportUnspliced flags inCh sends in stmt's own expressions (nested block
// statements are visited by scanSpliceBlock's recursion, and function
// literals execute outside this critical section).
func reportUnspliced(pass *Pass, stmt ast.Stmt, held map[string]bool) {
	if spliceHeld(held) {
		return
	}
	ast.Inspect(stmt, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.BlockStmt:
			return false
		case *ast.SelectStmt:
			return false // comm clauses are scanned by scanSpliceBlock
		case *ast.SendStmt:
			if sel, ok := n.Chan.(*ast.SelectorExpr); ok && sel.Sel.Name == "inCh" {
				pass.Reportf(n.Pos(), "send on %s.inCh without holding the splice lock; ScaleDown may be reclaiming the queue", exprKey(sel.X))
			}
			return false
		}
		return true
	})
}
