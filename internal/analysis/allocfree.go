package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AllocFree statically pins the engine's "0 allocs/op acked path" claim,
// which until v2 only `go test -benchmem` guarded at runtime: inside a
// //dsps:hotpath call tree (the annotated roots plus everything
// statically reachable from them), it flags every construct the compiler
// may turn into a heap allocation:
//
//   - make / new builtin calls
//   - append (the growth path allocates a new backing array)
//   - composite literals that are heap candidates: &T{…}, and slice or
//     map literals
//   - function literals (a closure capturing by reference allocates its
//     capture block) and `go` statements (a new goroutine plus its
//     closure)
//   - interface boxing at call sites: a concrete non-pointer-shaped
//     value passed to an interface parameter (or converted to an
//     interface type) escapes into a heap-allocated box — the exact
//     regression the typed EmitInt64/EmitFloat64 lanes exist to prevent
//
// Designed amortized allocation points (arena refills, free-list
// fallbacks) opt out per function with `//dsps:allocs <justification>`;
// the justification is carried into the report and the committed
// baseline, so the set of sanctioned allocation sites is reviewable.
// The analyzer is deliberately conservative-static: it cannot see escape
// analysis or steady-state capacity reservations, so a finding means
// "the compiler may allocate here", to be fixed, justified with
// //dsps:allocs, or suppressed with a //dspslint:ignore reason.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "potential heap allocation (make/append/new, composite literal, closure, go, interface boxing) in a //dsps:hotpath call tree",
	Run:  runAllocFree,
}

func runAllocFree(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			node := pass.Mod.Graph.NodeAt(fn)
			if node == nil || !node.HotTainted || node.AllocsReason != "" {
				continue
			}
			where := whereHot(node, funcLabel(fn))
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.GoStmt:
					pass.Reportf(n.Pos(), "go statement %s allocates a goroutine and its closure", where)
					return false // the spawned body is not on the hot path
				case *ast.FuncLit:
					pass.Reportf(n.Pos(), "closure literal %s allocates its capture block", where)
					return false
				case *ast.CompositeLit:
					if lit := compositeAllocKind(pass, n); lit != "" {
						pass.Reportf(n.Pos(), "%s literal %s allocates", lit, where)
						return false // inner literals are part of the same allocation
					}
				case *ast.UnaryExpr:
					if n.Op == token.AND {
						if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
							pass.Reportf(n.Pos(), "&composite literal %s escapes to the heap", where)
							return false
						}
					}
				case *ast.CallExpr:
					// Allocations feeding a panic are moot: the guard
					// `panic(fmt.Sprintf(…))` executes zero times per op in
					// steady state, and the process is dying anyway.
					if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
						if b, isB := pass.Info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
							return false
						}
					}
					reportCallAllocs(pass, n, where)
				}
				return true
			})
		}
	}
}

// whereHot situates a diagnostic: directly annotated functions read
// naturally, tainted ones carry the witness chain to their root.
func whereHot(node *FuncNode, label string) string {
	if node.Hotpath {
		return "in hot-path function " + label + " (//dsps:hotpath)"
	}
	return "in " + label + " (reachable from hot path " + node.HotChain() + ")"
}

// compositeAllocKind classifies a composite literal as a heap candidate:
// slice and map literals always allocate backing storage; plain struct
// and array literals are stack values unless their address escapes
// (caught by the &-literal case).
func compositeAllocKind(pass *Pass, lit *ast.CompositeLit) string {
	t := pass.TypeOf(lit)
	if t == nil {
		return ""
	}
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return ""
}

// reportCallAllocs flags allocating builtins and interface boxing at one
// call site.
func reportCallAllocs(pass *Pass, call *ast.CallExpr, where string) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make":
				pass.Reportf(call.Pos(), "make %s allocates", where)
			case "new":
				pass.Reportf(call.Pos(), "new %s allocates", where)
			case "append":
				pass.Reportf(call.Pos(), "append %s may grow its backing array", where)
			}
			return
		}
	}
	t := pass.TypeOf(call.Fun)
	if t == nil {
		return
	}
	// Conversion to an interface type: any(v), error(v)…
	if isConversion(pass, call) {
		if types.IsInterface(t.Underlying()) && len(call.Args) == 1 {
			if boxes(pass.TypeOf(call.Args[0])) {
				pass.Reportf(call.Pos(), "conversion of %s to interface %s boxes on the heap",
					typeLabel(pass.TypeOf(call.Args[0])), where)
			}
		}
		return
	}
	sig, ok := t.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // f(slice...) passes the slice through, no boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt.Underlying()) {
			continue
		}
		if _, isTP := pt.(*types.TypeParam); isTP {
			continue // generic parameter: instantiation decides, not this site
		}
		at := pass.TypeOf(arg)
		if boxes(at) {
			pass.Reportf(arg.Pos(), "passing %s to interface parameter boxes on the heap %s",
				typeLabel(at), where)
		}
	}
}

// isConversion reports whether call is a type conversion rather than a
// function call.
func isConversion(pass *Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		_, ok := pass.Info.Uses[fun].(*types.TypeName)
		return ok
	case *ast.SelectorExpr:
		_, ok := pass.Info.Uses[fun.Sel].(*types.TypeName)
		return ok
	case *ast.InterfaceType, *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType, *ast.StarExpr:
		return true
	}
	return false
}

// boxes reports whether storing a value of type t in an interface
// allocates: pointer-shaped values (pointers, channels, maps, funcs,
// unsafe.Pointer) ride the interface word directly; interfaces and nil
// re-wrap without allocating; everything else is copied into a heap box.
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		switch u.Kind() {
		case types.UnsafePointer, types.UntypedNil:
			return false
		}
		if u.Info()&types.IsUntyped != 0 && u.Kind() == types.UntypedString {
			return true
		}
	case *types.TypeParam:
		return false // instantiation-dependent
	}
	return true
}

// typeLabel renders a type compactly for diagnostics.
func typeLabel(t types.Type) string {
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
