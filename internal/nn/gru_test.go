package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestGRUGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3}, Out: 1, Cell: "gru"}, rng)
	seq := [][]float64{{0.2, -0.5}, {0.1, 0.9}, {-0.3, 0.4}}
	worst := GradCheck(net, seq, []float64{0.5}, MSE{}, 1e-5)
	if worst > 1e-4 {
		t.Fatalf("GRU gradient check worst relative error %v", worst)
	}
}

func TestGRUStackedGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3, 4}, DenseHidden: []int{3}, Out: 2, Cell: "gru"}, rng)
	seq := [][]float64{{0.2, -0.5}, {0.1, 0.9}}
	worst := GradCheck(net, seq, []float64{0.5, -0.1}, MSE{}, 1e-5)
	if worst > 1e-4 {
		t.Fatalf("stacked GRU gradient check worst relative error %v", worst)
	}
}

func TestGRUForwardShapesAndState(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := NewGRU(2, 5, rng)
	if g.InSize() != 2 || g.HiddenSize() != 5 || g.CellType() != "gru" {
		t.Fatal("GRU metadata wrong")
	}
	seq := [][]float64{{1, 0}, {0, 1}, {1, 0}}
	out := g.ForwardSeq(seq)
	if len(out) != 3 || len(out[0]) != 5 {
		t.Fatalf("output shape %dx%d", len(out), len(out[0]))
	}
	// Repeated input with state propagation should differ across steps.
	same := true
	for i := range out[0] {
		if out[0][i] != out[2][i] {
			same = false
		}
	}
	if same {
		t.Fatal("GRU ignored recurrent state")
	}
	// State resets between sequences.
	again := g.ForwardSeq(seq)
	for i := range out[0] {
		if out[0][i] != again[0][i] {
			t.Fatal("GRU state leaked across sequences")
		}
	}
}

func TestGRULearnsSine(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	const window = 8
	var data Dataset
	for i := 0; i < 200; i++ {
		seq := make([][]float64, window)
		for k := 0; k < window; k++ {
			seq[k] = []float64{math.Sin(0.3 * float64(i+k))}
		}
		data.X = append(data.X, seq)
		data.Y = append(data.Y, []float64{math.Sin(0.3 * float64(i+window))})
	}
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{12}, Out: 1, Cell: "gru"}, rng)
	losses, err := Train(net, data, TrainConfig{
		Epochs: 30, Optimizer: NewAdam(5e-3), ClipNorm: 5, Shuffle: true, Rng: rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > 0.01 {
		t.Fatalf("GRU final loss %v too high", losses[len(losses)-1])
	}
}

func TestGRUFewerParamsThanLSTM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lstm := NewNetwork(Arch{In: 4, LSTMHidden: []int{16}, Out: 1, Cell: "lstm"}, rng)
	gru := NewNetwork(Arch{In: 4, LSTMHidden: []int{16}, Out: 1, Cell: "gru"}, rng)
	if gru.NumParams() >= lstm.NumParams() {
		t.Fatalf("GRU params %d not fewer than LSTM %d", gru.NumParams(), lstm.NumParams())
	}
}

func TestGRUSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	net := NewNetwork(Arch{In: 3, LSTMHidden: []int{4, 5}, DenseHidden: []int{6}, Out: 2, Cell: "gru"}, rng)
	seq := [][]float64{{0.1, 0.2, 0.3}, {-0.1, 0.5, 0.2}}
	want := net.Forward(seq)
	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Recurrent[0].CellType() != "gru" {
		t.Fatal("cell type lost in round-trip")
	}
	got := loaded.Forward(seq)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round-trip output %v want %v", got, want)
		}
	}
}

func TestGRUSetWeightsValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := NewGRU(2, 3, rng)
	wx, wh, b := g.Weights()
	if err := g.SetWeights(wx[:2], wh, b); err == nil {
		t.Fatal("short weight group accepted")
	}
	if err := g.SetWeights(wx, wh, b); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownCellPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown cell did not panic")
		}
	}()
	NewNetwork(Arch{In: 1, LSTMHidden: []int{2}, Out: 1, Cell: "rnn"}, rand.New(rand.NewSource(1)))
}

func BenchmarkGRUForwardWindow10(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(Arch{In: 12, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1, Cell: "gru"}, rng)
	seq := make([][]float64, 10)
	for t := range seq {
		seq[t] = make([]float64, 12)
		for i := range seq[t] {
			seq[t][i] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(seq)
	}
}
