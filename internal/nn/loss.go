package nn

import "fmt"

// Loss is a differentiable objective over a single example.
type Loss interface {
	// Value returns the scalar loss for predicted vs target.
	Value(pred, target []float64) float64
	// Grad returns ∂L/∂pred.
	Grad(pred, target []float64) []float64
	// Name identifies the loss for logging and checkpoints.
	Name() string
}

// MSE is mean squared error, ½·mean((p-t)²) so the gradient is (p-t)/n.
type MSE struct{}

// Name implements Loss.
func (MSE) Name() string { return "mse" }

// Value implements Loss.
func (MSE) Value(pred, target []float64) float64 {
	checkLossPair(pred, target)
	var s float64
	for i, p := range pred {
		d := p - target[i]
		s += d * d
	}
	return s / (2 * float64(len(pred)))
}

// Grad implements Loss.
func (MSE) Grad(pred, target []float64) []float64 {
	checkLossPair(pred, target)
	out := make([]float64, len(pred))
	n := float64(len(pred))
	for i, p := range pred {
		out[i] = (p - target[i]) / n
	}
	return out
}

// MAELoss is mean absolute error with the conventional subgradient 0 at
// zero residual.
type MAELoss struct{}

// Name implements Loss.
func (MAELoss) Name() string { return "mae" }

// Value implements Loss.
func (MAELoss) Value(pred, target []float64) float64 {
	checkLossPair(pred, target)
	var s float64
	for i, p := range pred {
		d := p - target[i]
		if d < 0 {
			d = -d
		}
		s += d
	}
	return s / float64(len(pred))
}

// Grad implements Loss.
func (MAELoss) Grad(pred, target []float64) []float64 {
	checkLossPair(pred, target)
	out := make([]float64, len(pred))
	n := float64(len(pred))
	for i, p := range pred {
		switch {
		case p > target[i]:
			out[i] = 1 / n
		case p < target[i]:
			out[i] = -1 / n
		}
	}
	return out
}

// Huber is the Huber loss with threshold Delta, quadratic near zero and
// linear in the tails; robust to the latency spikes engine traces contain.
type Huber struct{ Delta float64 }

// Name implements Loss.
func (Huber) Name() string { return "huber" }

func (h Huber) delta() float64 {
	if h.Delta <= 0 {
		return 1
	}
	return h.Delta
}

// Value implements Loss.
func (h Huber) Value(pred, target []float64) float64 {
	checkLossPair(pred, target)
	d := h.delta()
	var s float64
	for i, p := range pred {
		r := p - target[i]
		if r < 0 {
			r = -r
		}
		if r <= d {
			s += r * r / 2
		} else {
			s += d * (r - d/2)
		}
	}
	return s / float64(len(pred))
}

// Grad implements Loss.
func (h Huber) Grad(pred, target []float64) []float64 {
	checkLossPair(pred, target)
	d := h.delta()
	out := make([]float64, len(pred))
	n := float64(len(pred))
	for i, p := range pred {
		r := p - target[i]
		switch {
		case r > d:
			out[i] = d / n
		case r < -d:
			out[i] = -d / n
		default:
			out[i] = r / n
		}
	}
	return out
}

func checkLossPair(pred, target []float64) {
	if len(pred) != len(target) {
		panic(fmt.Sprintf("nn: loss length mismatch %d vs %d", len(pred), len(target)))
	}
	if len(pred) == 0 {
		panic("nn: loss on empty vectors")
	}
}
