package nn

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"predstream/internal/mat"
)

// This file implements the data-parallel mini-batch executor behind Train.
//
// N worker replicas share the main network's weight matrices read-only;
// each owns private gradient accumulators and layer workspaces. Examples of
// a mini-batch are pulled from a shared counter, and every example writes
// its gradients into a dedicated pooled buffer. After the batch the buffers
// are reduced into the main parameters strictly in example order, and
// per-example losses are summed in position order, so the result is
// bitwise-identical for any worker count (see DESIGN.md, "Training
// engine").

// gradBuf holds one example's gradients, one tensor per parameter in
// Params() order.
type gradBuf []*mat.Dense

type engine struct {
	main   *Network
	params []*Param
	loss   Loss

	replicas  []*Network
	repParams [][]*Param
	repRngs   []*rand.Rand

	dropout  bool
	baseSeed int64

	mu   sync.Mutex
	free []gradBuf

	slots     []gradBuf
	lossSlots []float64
}

// newEngine builds an executor with `workers` replicas of net. When
// dropout is set, each replica gets a private rng that is reseeded per
// example from (baseSeed, epoch, position), keeping masks independent of
// the worker that happens to process the example.
func newEngine(net *Network, loss Loss, workers int, baseSeed int64, dropout bool) *engine {
	if workers < 1 {
		workers = 1
	}
	e := &engine{
		main:     net,
		params:   net.Params(),
		loss:     loss,
		dropout:  dropout,
		baseSeed: baseSeed,
	}
	for w := 0; w < workers; w++ {
		rep := net.Replicate()
		var rng *rand.Rand
		if dropout {
			rng = rand.New(&splitmixSource{})
			rep.SetTraining(true, rng)
		}
		e.replicas = append(e.replicas, rep)
		e.repParams = append(e.repParams, rep.Params())
		e.repRngs = append(e.repRngs, rng)
	}
	return e
}

func (e *engine) newGradBuf() gradBuf {
	buf := make(gradBuf, len(e.params))
	for i, p := range e.params {
		r, c := p.W.Dims()
		buf[i] = mat.New(r, c)
	}
	return buf
}

// acquire pops a zeroed gradient buffer from the pool, allocating on miss.
func (e *engine) acquire() gradBuf {
	e.mu.Lock()
	if n := len(e.free); n > 0 {
		b := e.free[n-1]
		e.free = e.free[:n-1]
		e.mu.Unlock()
		return b
	}
	e.mu.Unlock()
	return e.newGradBuf()
}

// release zeroes b and returns it to the pool.
func (e *engine) release(b gradBuf) {
	for _, g := range b {
		g.Zero()
	}
	e.mu.Lock()
	e.free = append(e.free, b)
	e.mu.Unlock()
}

// runBatch runs Forward/Backward for data[idxs] across the replicas and
// reduces the per-example gradients into the main parameters in example
// order. epochPos is the position of idxs[0] within the epoch (used for
// dropout seeding). It returns the summed loss over the batch.
func (e *engine) runBatch(data Dataset, idxs []int, epoch, epochPos int) float64 {
	n := len(idxs)
	if cap(e.slots) < n {
		e.slots = make([]gradBuf, n)
	}
	slots := e.slots[:n]
	losses := e.lossBuf(n)
	workers := len(e.replicas)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Inline path: no goroutine round-trips when there is nothing to
		// overlap (one worker, or a one-example batch).
		for k := 0; k < n; k++ {
			e.runExample(0, k, slots, losses, data, idxs, epoch, epochPos)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= n {
						return
					}
					e.runExample(w, k, slots, losses, data, idxs, epoch, epochPos)
				}
			}(w)
		}
		wg.Wait()
	}
	var total float64
	for k := 0; k < n; k++ {
		for i, g := range slots[k] {
			e.params[i].Grad.AddInPlace(g)
		}
		e.release(slots[k])
		slots[k] = nil
		total += losses[k]
	}
	return total
}

// runExample processes batch position k on replica w: gradients go into a
// pooled buffer (the replica's Param.Grad pointers are swapped to it, no
// copying) and the loss into losses[k].
func (e *engine) runExample(w, k int, slots []gradBuf, losses []float64, data Dataset, idxs []int, epoch, epochPos int) {
	buf := e.acquire()
	for i, p := range e.repParams[w] {
		p.Grad = buf[i]
	}
	if e.dropout {
		e.repRngs[w].Seed(exampleSeed(e.baseSeed, epoch, epochPos+k))
	}
	rep := e.replicas[w]
	idx := idxs[k]
	pred := rep.Forward(data.X[idx])
	losses[k] = e.loss.Value(pred, data.Y[idx])
	rep.Backward(e.loss.Grad(pred, data.Y[idx]))
	slots[k] = buf
}

// evaluate returns the mean loss over data with the replicas in inference
// mode, summing per-example losses in index order so the result matches
// the serial EvaluateLoss bitwise.
func (e *engine) evaluate(data *Dataset) float64 {
	n := data.Len()
	losses := e.lossBuf(n)
	if e.dropout {
		for _, rep := range e.replicas {
			rep.SetTraining(false, nil)
		}
		defer func() {
			for w, rep := range e.replicas {
				rep.SetTraining(true, e.repRngs[w])
			}
		}()
	}
	workers := len(e.replicas)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for k := 0; k < n; k++ {
			losses[k] = e.loss.Value(e.replicas[0].Forward(data.X[k]), data.Y[k])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for {
					k := int(next.Add(1)) - 1
					if k >= n {
						return
					}
					losses[k] = e.loss.Value(e.replicas[w].Forward(data.X[k]), data.Y[k])
				}
			}(w)
		}
		wg.Wait()
	}
	var total float64
	for _, l := range losses {
		total += l
	}
	return total / float64(n)
}

// lossBuf returns the reusable per-position loss slice grown to n.
func (e *engine) lossBuf(n int) []float64 {
	if cap(e.lossSlots) < n {
		e.lossSlots = make([]float64, n)
	}
	return e.lossSlots[:n]
}

// EvaluateLossParallel returns the mean loss of net over data without
// training, fanning examples out over `workers` goroutines (0 picks
// runtime.GOMAXPROCS). The result is bitwise-identical to EvaluateLoss for
// any worker count because per-example losses are summed in index order.
func EvaluateLossParallel(net *Network, data Dataset, loss Loss, workers int) (float64, error) {
	if err := data.Validate(net.InSize(), net.OutSize()); err != nil {
		return 0, err
	}
	if data.Len() == 0 {
		return 0, errEmptyDataset
	}
	if loss == nil {
		loss = MSE{}
	}
	eng := newEngine(net, loss, effectiveWorkers(workers), 0, false)
	return eng.evaluate(&data), nil
}

// splitmixSource is a SplitMix64 rand.Source64. Unlike the stdlib source
// (whose Seed reinitializes a 607-word feedback register), reseeding is a
// single store, which the engine does once per example for dropout masks.
type splitmixSource struct{ state uint64 }

func (s *splitmixSource) Seed(seed int64) { s.state = uint64(seed) }

func (s *splitmixSource) Uint64() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (s *splitmixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// exampleSeed derives the dropout seed for the example at `pos` within an
// epoch. It depends only on (baseSeed, epoch, pos) — never on which worker
// runs the example — so masks are identical for any worker count.
func exampleSeed(baseSeed int64, epoch, pos int) int64 {
	z := uint64(baseSeed) ^ (uint64(epoch)+1)*0x9E3779B97F4A7C15 ^ (uint64(pos)+1)*0xBF58476D1CE4E5B9
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64((z ^ (z >> 31)) >> 1)
}
