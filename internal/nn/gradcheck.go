package nn

import "math"

// GradCheck compares the analytic gradient of every parameter of net on
// one (seq, target) example against a central finite difference, returning
// the worst relative error encountered. Test-only code keeps it exported
// here so the drnn package can reuse it on its composed models.
func GradCheck(net *Network, seq [][]float64, target []float64, loss Loss, eps float64) float64 {
	params := net.Params()
	for _, p := range params {
		p.ZeroGrad()
	}
	pred := net.Forward(seq)
	net.Backward(loss.Grad(pred, target))

	worst := 0.0
	for _, p := range params {
		wd := p.W.Data()
		gd := p.Grad.Data()
		for i := range wd {
			orig := wd[i]
			wd[i] = orig + eps
			lossPlus := loss.Value(net.Forward(seq), target)
			wd[i] = orig - eps
			lossMinus := loss.Value(net.Forward(seq), target)
			wd[i] = orig
			numeric := (lossPlus - lossMinus) / (2 * eps)
			analytic := gd[i]
			den := math.Max(math.Abs(numeric)+math.Abs(analytic), 1e-8)
			rel := math.Abs(numeric-analytic) / den
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst
}
