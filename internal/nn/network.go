package nn

import (
	"fmt"
	"math/rand"

	"predstream/internal/mat"
)

// Network is a sequence-to-one regression model: a stack of recurrent
// layers (LSTM or GRU) consumes the input window timestep by timestep, and
// a stack of dense layers maps the final hidden state to the output
// vector. This is exactly the paper's DRNN shape (recurrent layers +
// fully-connected output).
type Network struct {
	Recurrent []Recurrent
	Head      []*Dense

	// DropoutP drops units of the recurrent stack's final hidden state
	// during training (inverted dropout); 0 disables.
	DropoutP float64

	lastSeqLen  int
	training    bool
	dropRng     *rand.Rand
	lastDropout []float64 // mask applied in the last training Forward

	dropMask   []float64   // reusable inverted-dropout mask buffer
	dropScaled []float64   // reusable masked-output buffer
	dHTop      [][]float64 // reusable top-layer hidden-state gradients
}

// SetTraining toggles training mode (enables dropout). rng drives mask
// sampling and is required when DropoutP > 0.
func (n *Network) SetTraining(training bool, rng *rand.Rand) {
	n.training = training
	n.dropRng = rng
}

// Arch describes a Network to construct: input feature count, hidden sizes
// of the recurrent stack, hidden sizes of the dense head, and output size.
type Arch struct {
	In          int
	LSTMHidden  []int
	DenseHidden []int
	Out         int
	HiddenAct   Activation // activation for dense hidden layers; default Tanh
	// Cell selects the recurrent cell: "lstm" (default) or "gru".
	Cell string
	// Dropout drops this fraction of the recurrent output during
	// training; 0 disables. Must be in [0, 0.9].
	Dropout float64
}

// NewNetwork builds a Network from arch with weights drawn from rng.
func NewNetwork(arch Arch, rng *rand.Rand) *Network {
	if arch.In <= 0 || arch.Out <= 0 {
		panic(fmt.Sprintf("nn: invalid arch in=%d out=%d", arch.In, arch.Out))
	}
	if len(arch.LSTMHidden) == 0 {
		panic("nn: arch needs at least one recurrent layer")
	}
	hiddenAct := arch.HiddenAct
	if hiddenAct.F == nil {
		hiddenAct = Tanh
	}
	cell := arch.Cell
	if cell == "" {
		cell = "lstm"
	}
	if arch.Dropout < 0 || arch.Dropout > 0.9 {
		panic(fmt.Sprintf("nn: dropout %v out of [0, 0.9]", arch.Dropout))
	}
	net := &Network{DropoutP: arch.Dropout}
	in := arch.In
	for _, h := range arch.LSTMHidden {
		switch cell {
		case "lstm":
			net.Recurrent = append(net.Recurrent, NewLSTM(in, h, rng))
		case "gru":
			net.Recurrent = append(net.Recurrent, NewGRU(in, h, rng))
		default:
			panic(fmt.Sprintf("nn: unknown recurrent cell %q", cell))
		}
		in = h
	}
	for _, h := range arch.DenseHidden {
		net.Head = append(net.Head, NewDense(in, h, hiddenAct, rng))
		in = h
	}
	net.Head = append(net.Head, NewDense(in, arch.Out, Identity, rng))
	return net
}

// Replicate returns a worker copy of the network: every layer shares the
// original's weight matrices read-only but owns private gradient
// accumulators and forward/backward workspaces, so replicas can run
// Forward/Backward concurrently over different examples. Training mode and
// the dropout rng are NOT copied; call SetTraining on the replica.
func (n *Network) Replicate() *Network {
	r := &Network{DropoutP: n.DropoutP}
	for _, l := range n.Recurrent {
		r.Recurrent = append(r.Recurrent, l.Replicate())
	}
	for _, d := range n.Head {
		r.Head = append(r.Head, d.Replicate())
	}
	return r
}

// InSize returns the expected per-timestep feature count.
func (n *Network) InSize() int { return n.Recurrent[0].InSize() }

// OutSize returns the output vector length.
func (n *Network) OutSize() int { return n.Head[len(n.Head)-1].Out }

// Forward runs the network on one sequence (timesteps × features) and
// returns the output vector, caching activations for Backward.
func (n *Network) Forward(seq [][]float64) []float64 {
	if len(seq) == 0 {
		panic("nn: Forward on empty sequence")
	}
	n.lastSeqLen = len(seq)
	hidden := seq
	for _, l := range n.Recurrent {
		hidden = l.ForwardSeq(hidden)
	}
	out := hidden[len(hidden)-1]
	n.lastDropout = nil
	if n.training && n.DropoutP > 0 {
		if n.dropRng == nil {
			panic("nn: dropout requires SetTraining with an rng")
		}
		// Inverted dropout: surviving units scale by 1/(1-p) so inference
		// needs no rescaling.
		if len(n.dropMask) != len(out) {
			n.dropMask = make([]float64, len(out))
			n.dropScaled = make([]float64, len(out))
		}
		mask, scaled := n.dropMask, n.dropScaled
		keep := 1 - n.DropoutP
		for i, v := range out {
			if n.dropRng.Float64() < keep {
				mask[i] = 1 / keep
				scaled[i] = v / keep
			} else {
				mask[i] = 0
				scaled[i] = 0
			}
		}
		n.lastDropout = mask
		out = scaled
	}
	for _, d := range n.Head {
		out = d.Forward(out)
	}
	return out
}

// Backward accumulates gradients for the last Forward call given
// dOut = ∂L/∂output.
func (n *Network) Backward(dOut []float64) {
	if n.lastSeqLen == 0 {
		panic("nn: Backward before Forward")
	}
	grad := dOut
	for i := len(n.Head) - 1; i >= 0; i-- {
		grad = n.Head[i].Backward(grad)
	}
	if n.lastDropout != nil {
		for i := range grad {
			grad[i] *= n.lastDropout[i]
		}
	}
	// In seq-to-one mode only the final timestep of the top recurrent layer
	// receives loss gradient; each layer's per-timestep input gradient is
	// the hidden-state gradient of the layer below.
	top := n.Recurrent[len(n.Recurrent)-1]
	hidden := top.HiddenSize()
	for len(n.dHTop) < n.lastSeqLen {
		n.dHTop = append(n.dHTop, make([]float64, hidden))
	}
	dH := n.dHTop[:n.lastSeqLen]
	for t := 0; t < n.lastSeqLen-1; t++ {
		zeroVec(dH[t])
	}
	copy(dH[n.lastSeqLen-1], grad)
	for i := len(n.Recurrent) - 1; i >= 0; i-- {
		dX := n.Recurrent[i].BackwardSeq(dH)
		if i > 0 {
			dH = dX
		}
	}
}

// Params returns every learnable parameter in the network.
func (n *Network) Params() []*Param {
	var out []*Param
	for _, l := range n.Recurrent {
		out = append(out, l.Params()...)
	}
	for _, d := range n.Head {
		out = append(out, d.Params()...)
	}
	return out
}

// NumParams returns the total scalar parameter count.
func (n *Network) NumParams() int {
	total := 0
	for _, p := range n.Params() {
		r, c := p.W.Dims()
		total += r * c
	}
	return total
}

// SnapshotWeights deep-copies every parameter tensor, for best-epoch
// restoration during validated training.
func (n *Network) SnapshotWeights() []*mat.Dense {
	params := n.Params()
	out := make([]*mat.Dense, len(params))
	for i, p := range params {
		out[i] = p.W.Copy()
	}
	return out
}

// RestoreWeights loads a snapshot produced by SnapshotWeights.
func (n *Network) RestoreWeights(snap []*mat.Dense) {
	params := n.Params()
	if len(snap) != len(params) {
		panic(fmt.Sprintf("nn: snapshot has %d tensors for %d params", len(snap), len(params)))
	}
	for i, p := range params {
		copy(p.W.Data(), snap[i].Data())
	}
}
