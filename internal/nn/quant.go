package nn

import (
	"fmt"
	"math"
	"sync"

	"predstream/internal/mat"
)

// Int8 fixed-point quantized inference: weights are quantized once per
// tensor (symmetric, scale = maxAbs/127), activations dynamically per row
// at each matmul (the standard dynamic-quantization scheme). Accumulation
// is int32; biases and nonlinearities stay float64. The quantized model is
// ~8× smaller in weight bytes and serves the micro-batching prediction
// server's low-memory forward path; E14 measures the accuracy delta.

// QuantTensor is an int8-quantized weight matrix with one float scale for
// the whole tensor: float value ≈ Scale × int8 value.
type QuantTensor struct {
	Rows, Cols int
	Scale      float64
	Data       []int8
}

// QuantizeTensor quantizes m symmetrically to int8 with a per-tensor
// scale. An all-zero tensor gets scale 1 so Dequantize returns zeros.
func QuantizeTensor(m *mat.Dense) *QuantTensor {
	rows, cols := m.Dims()
	q := &QuantTensor{Rows: rows, Cols: cols, Data: make([]int8, rows*cols)}
	q.Scale = m.MaxAbs() / 127
	if q.Scale == 0 {
		q.Scale = 1
	}
	for i, v := range m.Data() {
		q.Data[i] = roundInt8(v / q.Scale)
	}
	return q
}

// Dequantize reconstructs the float tensor (with quantization error ≤
// Scale/2 per element).
func (q *QuantTensor) Dequantize() *mat.Dense {
	m := mat.New(q.Rows, q.Cols)
	d := m.Data()
	for i, v := range q.Data {
		d[i] = float64(v) * q.Scale
	}
	return m
}

func roundInt8(v float64) int8 {
	r := math.Round(v)
	if r > 127 {
		r = 127
	}
	if r < -127 {
		r = -127
	}
	return int8(r)
}

// quantCell is one quantized recurrent layer (weights only; biases float).
type quantCell struct {
	kind       string // "lstm" or "gru"
	in, hidden int
	wx, wh     []*QuantTensor
	b          [][]float64
}

// quantDense is one quantized dense layer.
type quantDense struct {
	in, out int
	w       *QuantTensor
	b       []float64
	act     Activation
}

// QuantNetwork is an int8-quantized, inference-only copy of a Network.
// Build one with Quantize; evaluate with NewRunner (batched, pooled
// workspaces, safe for concurrent use).
type QuantNetwork struct {
	in, out int
	cells   []quantCell
	head    []quantDense
}

// Quantize builds an int8 inference copy of net. The original network is
// read once and not retained.
func Quantize(net *Network) *QuantNetwork {
	q := &QuantNetwork{in: net.InSize(), out: net.OutSize()}
	for _, l := range net.Recurrent {
		wx, wh, b := l.Weights()
		cell := quantCell{kind: l.CellType(), in: l.InSize(), hidden: l.HiddenSize()}
		for g := range wx {
			cell.wx = append(cell.wx, QuantizeTensor(wx[g]))
			cell.wh = append(cell.wh, QuantizeTensor(wh[g]))
			bias := make([]float64, cell.hidden)
			copy(bias, b[g].Data())
			cell.b = append(cell.b, bias)
		}
		q.cells = append(q.cells, cell)
	}
	for _, d := range net.Head {
		w, b := d.Weights()
		bias := make([]float64, d.Out)
		copy(bias, b.Data())
		q.head = append(q.head, quantDense{in: d.In, out: d.Out, w: QuantizeTensor(w), b: bias, act: d.Act})
	}
	return q
}

// InSize returns the expected per-timestep feature count.
func (q *QuantNetwork) InSize() int { return q.in }

// OutSize returns the output vector length.
func (q *QuantNetwork) OutSize() int { return q.out }

// WeightBytes returns the total weight payload in bytes (int8 tensors
// only, excluding float biases) — the footprint E14 reports against the
// float64 model's 8× larger one.
func (q *QuantNetwork) WeightBytes() int {
	n := 0
	for _, c := range q.cells {
		for g := range c.wx {
			n += len(c.wx[g].Data) + len(c.wh[g].Data)
		}
	}
	for _, d := range q.head {
		n += len(d.w.Data)
	}
	return n
}

// QuantRunner evaluates a QuantNetwork over micro-batches, mirroring
// BatchRunner: per-timestep int8 GEMMs across the batch with pooled
// workspaces. Safe for concurrent use.
type QuantRunner struct {
	net  *QuantNetwork
	opts BatchOptions
	pool sync.Pool // *quantWS
}

// NewRunner returns a pooled batched evaluator over q.
func (q *QuantNetwork) NewRunner(opts BatchOptions) *QuantRunner {
	r := &QuantRunner{net: q, opts: opts}
	r.pool.New = func() any { return &quantWS{} }
	return r
}

// qbuf is a grow-only int8 arena for quantized activation rows.
type qbuf struct {
	data  []int8
	scale []float64
}

// ensure grows the arena to hold rows*cols quantized values.
//
//dsps:allocs arena grown once per shape change; steady-state rows reuse it
func (b *qbuf) ensure(rows, cols int) {
	if cap(b.data) < rows*cols {
		b.data = make([]int8, rows*cols)
	}
	b.data = b.data[:rows*cols]
	if cap(b.scale) < rows {
		b.scale = make([]float64, rows)
	}
	b.scale = b.scale[:rows]
}

// quantWS is one pooled quantized-forward workspace.
type quantWS struct {
	bank [2][]buf // float activations per timestep, like batchWS
	gate []buf
	st   []buf
	head [2]buf
	xq   qbuf // quantized input rows for the current step
	hq   qbuf // quantized hidden rows for the current step
}

//dsps:allocs per-timestep buffer list grows once per longest-sequence change
func (w *quantWS) bankBuf(bank, t int) *buf {
	for len(w.bank[bank]) <= t {
		w.bank[bank] = append(w.bank[bank], buf{})
	}
	return &w.bank[bank][t]
}

//dsps:allocs gate buffer list grows once per layer-count change
func (w *quantWS) gateBuf(i int) *buf {
	for len(w.gate) <= i {
		w.gate = append(w.gate, buf{})
	}
	return &w.gate[i]
}

//dsps:allocs state buffer list grows once per layer-count change
func (w *quantWS) stBuf(i int) *buf {
	for len(w.st) <= i {
		w.st = append(w.st, buf{})
	}
	return &w.st[i]
}

// quantizeRows quantizes each row of x dynamically (per-row symmetric
// scale) into dst.
//
//dsps:hotpath
func quantizeRows(dst *qbuf, x *mat.Dense) {
	rows, cols := x.Dims()
	dst.ensure(rows, cols)
	data := x.Data()
	for r := 0; r < rows; r++ {
		row := data[r*cols : (r+1)*cols]
		var maxAbs float64
		for _, v := range row {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
		scale := maxAbs / 127
		if scale == 0 {
			scale = 1
		}
		dst.scale[r] = scale
		out := dst.data[r*cols : (r+1)*cols]
		inv := 1 / scale
		for i, v := range row {
			out[i] = roundInt8(v * inv)
		}
	}
}

// quantMulMat computes dst(+)= xq · wᵀ dequantized: for each row r,
// dst[r][i] (+)= w.Scale × xq.scale[r] × Σ_k w[i][k]·xq[r][k], with int32
// accumulation. add selects += over =.
//
//dsps:hotpath
func quantMulMat(dst *mat.Dense, w *QuantTensor, xq *qbuf, add bool) {
	B := dst.Rows()
	cols := w.Cols
	dd := dst.Data()
	for r := 0; r < B; r++ {
		xrow := xq.data[r*cols : (r+1)*cols]
		drow := dd[r*w.Rows : (r+1)*w.Rows]
		s := w.Scale * xq.scale[r]
		for i := 0; i < w.Rows; i++ {
			wrow := w.Data[i*cols : (i+1)*cols]
			var acc int32
			for k, wv := range wrow {
				acc += int32(wv) * int32(xrow[k])
			}
			if add {
				drow[i] += float64(acc) * s
			} else {
				drow[i] = float64(acc) * s
			}
		}
	}
}

// Forward mirrors BatchRunner.Forward on the quantized network: it fills
// dst[i] with the output vector for seqs[i]. Same shape contract.
func (r *QuantRunner) Forward(seqs [][][]float64, dst [][]float64) error {
	B := len(seqs)
	if B == 0 {
		return fmt.Errorf("nn: quant forward on empty batch")
	}
	if len(dst) != B {
		return fmt.Errorf("nn: quant forward got %d outputs for %d sequences", len(dst), B)
	}
	T := len(seqs[0])
	if T == 0 {
		return fmt.Errorf("nn: quant forward on empty sequence")
	}
	for b, seq := range seqs {
		if len(seq) != T {
			return fmt.Errorf("nn: quant sequence %d has %d steps, want %d", b, len(seq), T)
		}
		for t, row := range seq {
			if len(row) != r.net.in {
				return fmt.Errorf("nn: quant sequence %d step %d has %d features, want %d", b, t, len(row), r.net.in)
			}
		}
		if len(dst[b]) != r.net.out {
			return fmt.Errorf("nn: quant output %d has %d elements, want %d", b, len(dst[b]), r.net.out)
		}
	}

	ws := r.pool.Get().(*quantWS)
	defer r.pool.Put(ws)

	cur := 0
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, r.net.in)
		for b := 0; b < B; b++ {
			row := x.Data()[b*r.net.in : (b+1)*r.net.in]
			if r.opts.PreScale != nil {
				r.opts.PreScale(row, seqs[b][t])
			} else {
				copy(row, seqs[b][t])
			}
		}
	}

	for ci := range r.net.cells {
		next := 1 - cur
		cell := &r.net.cells[ci]
		switch cell.kind {
		case "lstm":
			quantLSTMForward(cell, ws, cur, next, B, T)
		case "gru":
			quantGRUForward(cell, ws, cur, next, B, T)
		default:
			return fmt.Errorf("nn: quant forward: unsupported cell %q", cell.kind)
		}
		cur = next
	}

	h := ws.bankBuf(cur, T-1).mat(B, r.net.cells[len(r.net.cells)-1].hidden)
	ping := 0
	for i := range r.net.head {
		d := &r.net.head[i]
		y := ws.head[ping].mat(B, d.out)
		quantizeRows(&ws.xq, h)
		quantMulMat(y, d.w, &ws.xq, false)
		addBiasRows(y, d.b)
		if d.act.Name != "identity" {
			applyVec(y.Data(), d.act.F)
		}
		h = y
		ping = 1 - ping
	}
	for b := 0; b < B; b++ {
		copy(dst[b], h.Data()[b*r.net.out:(b+1)*r.net.out])
	}
	return nil
}

// ForwardOne is Forward for a single sequence.
func (r *QuantRunner) ForwardOne(seq [][]float64, dst []float64) error {
	return r.Forward([][][]float64{seq}, [][]float64{dst})
}

// quantLSTMForward is the int8 analogue of lstmForwardBatch: x and hPrev
// rows are quantized once per timestep and reused across all four gates.
//
//dsps:hotpath
func quantLSTMForward(l *quantCell, ws *quantWS, cur, next, B, T int) {
	hPrev := ws.stBuf(0).zeroMat(B, l.hidden)
	cPrev := ws.stBuf(1).zeroMat(B, l.hidden)
	c := ws.stBuf(2).mat(B, l.hidden)
	tanhC := ws.stBuf(3).mat(B, l.hidden)
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, l.in)
		quantizeRows(&ws.xq, x)
		quantizeRows(&ws.hq, hPrev)
		var z [numGates]*mat.Dense
		for g := 0; g < numGates; g++ {
			z[g] = ws.gateBuf(g).mat(B, l.hidden)
			quantMulMat(z[g], l.wx[g], &ws.xq, false)
			quantMulMat(z[g], l.wh[g], &ws.hq, true)
			addBiasRows(z[g], l.b[g])
		}
		sigmoidVec(z[gateF].Data())
		sigmoidVec(z[gateI].Data())
		tanhVec(z[gateG].Data())
		sigmoidVec(z[gateO].Data())
		h := ws.bankBuf(next, t).mat(B, l.hidden)
		fd, id, gd, od := z[gateF].Data(), z[gateI].Data(), z[gateG].Data(), z[gateO].Data()
		cd, cp, tc, hd := c.Data(), cPrev.Data(), tanhC.Data(), h.Data()
		for i := range cd {
			cd[i] = fd[i]*cp[i] + id[i]*gd[i]
		}
		tanhVecTo(tc, cd)
		for i := range hd {
			hd[i] = od[i] * tc[i]
		}
		hPrev = h
		c, cPrev = cPrev, c
	}
}

// quantGRUForward is the int8 analogue of gruForwardBatch.
//
//dsps:hotpath
func quantGRUForward(g *quantCell, ws *quantWS, cur, next, B, T int) {
	hPrev := ws.stBuf(0).zeroMat(B, g.hidden)
	a := ws.stBuf(1).mat(B, g.hidden)
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, g.in)
		quantizeRows(&ws.xq, x)
		quantizeRows(&ws.hq, hPrev)
		z := ws.gateBuf(0).mat(B, g.hidden)
		rr := ws.gateBuf(1).mat(B, g.hidden)
		hHat := ws.gateBuf(2).mat(B, g.hidden)
		quantMulMat(z, g.wx[gruZ], &ws.xq, false)
		quantMulMat(z, g.wh[gruZ], &ws.hq, true)
		addBiasRows(z, g.b[gruZ])
		quantMulMat(rr, g.wx[gruR], &ws.xq, false)
		quantMulMat(rr, g.wh[gruR], &ws.hq, true)
		addBiasRows(rr, g.b[gruR])
		sigmoidVec(z.Data())
		sigmoidVec(rr.Data())
		ad, rd, hp := a.Data(), rr.Data(), hPrev.Data()
		for i := range ad {
			ad[i] = rd[i] * hp[i]
		}
		quantizeRows(&ws.hq, a)
		quantMulMat(hHat, g.wx[gruH], &ws.xq, false)
		quantMulMat(hHat, g.wh[gruH], &ws.hq, true)
		addBiasRows(hHat, g.b[gruH])
		tanhVec(hHat.Data())
		h := ws.bankBuf(next, t).mat(B, g.hidden)
		hd, zd, hh := h.Data(), z.Data(), hHat.Data()
		for i := range hd {
			hd[i] = (1-zd[i])*hp[i] + zd[i]*hh[i]
		}
		hPrev = h
	}
}
