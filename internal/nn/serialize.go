package nn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math/rand"

	"predstream/internal/mat"
)

// checkpoint is the gob wire format for a Network.
type checkpoint struct {
	In          int
	Out         int
	LSTMHidden  []int
	DenseHidden []int
	HiddenAct   string
	Cell        string // recurrent cell type; "" means lstm

	LSTMWx [][]*mat.Dense
	LSTMWh [][]*mat.Dense
	LSTMB  [][]*mat.Dense
	HeadW  []*mat.Dense
	HeadB  []*mat.Dense
}

// Save serializes the network's architecture and weights to w.
func Save(net *Network, w io.Writer) error {
	cp := checkpoint{
		In:   net.InSize(),
		Out:  net.OutSize(),
		Cell: net.Recurrent[0].CellType(),
	}
	for _, l := range net.Recurrent {
		cp.LSTMHidden = append(cp.LSTMHidden, l.HiddenSize())
		wx, wh, b := l.Weights()
		cp.LSTMWx = append(cp.LSTMWx, wx)
		cp.LSTMWh = append(cp.LSTMWh, wh)
		cp.LSTMB = append(cp.LSTMB, b)
	}
	for i, d := range net.Head {
		if i < len(net.Head)-1 {
			cp.DenseHidden = append(cp.DenseHidden, d.Out)
			cp.HiddenAct = d.Act.Name
		}
		dw, db := d.Weights()
		cp.HeadW = append(cp.HeadW, dw)
		cp.HeadB = append(cp.HeadB, db)
	}
	if err := gob.NewEncoder(w).Encode(cp); err != nil {
		return fmt.Errorf("nn: save: %w", err)
	}
	return nil
}

// Load reconstructs a network from a checkpoint written by Save.
func Load(r io.Reader) (*Network, error) {
	var cp checkpoint
	if err := gob.NewDecoder(r).Decode(&cp); err != nil {
		return nil, fmt.Errorf("nn: load: %w", err)
	}
	if len(cp.LSTMHidden) == 0 || cp.In <= 0 || cp.Out <= 0 {
		return nil, fmt.Errorf("nn: load: malformed checkpoint")
	}
	// Rebuild with a throwaway rng; weights are overwritten below.
	net := NewNetwork(Arch{
		In:          cp.In,
		LSTMHidden:  cp.LSTMHidden,
		DenseHidden: cp.DenseHidden,
		Out:         cp.Out,
		HiddenAct:   ActivationByName(cp.HiddenAct),
		Cell:        cp.Cell,
	}, rand.New(rand.NewSource(0)))
	if len(cp.LSTMWx) != len(net.Recurrent) || len(cp.HeadW) != len(net.Head) {
		return nil, fmt.Errorf("nn: load: layer count mismatch")
	}
	for i, l := range net.Recurrent {
		if err := l.SetWeights(cp.LSTMWx[i], cp.LSTMWh[i], cp.LSTMB[i]); err != nil {
			return nil, err
		}
	}
	for i, d := range net.Head {
		if err := d.SetWeights(cp.HeadW[i], cp.HeadB[i]); err != nil {
			return nil, err
		}
	}
	return net, nil
}
