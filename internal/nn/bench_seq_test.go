package nn

import (
	"math/rand"
	"testing"
)

// benchSeqPair measures one ForwardSeq/BackwardSeq pair on a bare cell —
// the inner loop of training — so allocs/op directly exposes per-timestep
// buffer churn (the workspace keeps it at zero after warmup).
func benchSeqPair(b *testing.B, cell Recurrent, in int) {
	rng := rand.New(rand.NewSource(1))
	const seqLen = 20
	seq := make([][]float64, seqLen)
	for t := range seq {
		seq[t] = make([]float64, in)
		for j := range seq[t] {
			seq[t][j] = rng.NormFloat64()
		}
	}
	dH := make([][]float64, seqLen)
	for t := range dH {
		dH[t] = make([]float64, cell.HiddenSize())
	}
	dH[seqLen-1][0] = 1
	cell.ForwardSeq(seq) // warm the workspace before measuring
	cell.BackwardSeq(dH)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cell.ForwardSeq(seq)
		cell.BackwardSeq(dH)
	}
}

func BenchmarkLSTMSeqPair(b *testing.B) {
	benchSeqPair(b, NewLSTM(12, 32, rand.New(rand.NewSource(2))), 12)
}

func BenchmarkGRUSeqPair(b *testing.B) {
	benchSeqPair(b, NewGRU(12, 32, rand.New(rand.NewSource(2))), 12)
}
