package nn

import (
	"fmt"
	"math/rand"

	"predstream/internal/mat"
)

// Dense is a fully connected layer y = act(Wx + b). It caches its last
// input and output for the backward pass, so a layer instance processes one
// example at a time (the training loops here are purely stochastic). All
// per-example buffers are preallocated; Forward and Backward return slices
// that alias them and stay valid until the next call.
type Dense struct {
	In, Out int
	Act     Activation

	w *Param // Out×In
	b *Param // Out×1

	lastIn  []float64
	lastOut []float64
	delta   []float64
	dx      []float64
	seen    bool
}

// NewDense builds a Dense layer with Xavier-initialized weights (He for
// ReLU) and zero biases.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense dims %d->%d", in, out))
	}
	w := mat.New(out, in)
	if act.Name == "relu" {
		w.RandHe(rng)
	} else {
		w.RandXavier(rng)
	}
	d := &Dense{
		In:  in,
		Out: out,
		Act: act,
		w:   newParam("dense.w", w),
		b:   newParam("dense.b", mat.New(out, 1)),
	}
	d.initWorkspace()
	return d
}

func (d *Dense) initWorkspace() {
	d.lastIn = make([]float64, d.In)
	d.lastOut = make([]float64, d.Out)
	d.delta = make([]float64, d.Out)
	d.dx = make([]float64, d.In)
}

// Replicate returns a copy sharing this layer's weight matrices but owning
// its own gradient accumulators and workspace, for concurrent mini-batch
// workers.
func (d *Dense) Replicate() *Dense {
	r := &Dense{
		In:  d.In,
		Out: d.Out,
		Act: d.Act,
		w:   d.w.shareWeights(),
		b:   d.b.shareWeights(),
	}
	r.initWorkspace()
	return r
}

// Forward computes the layer output for x, caching what Backward needs. The
// returned slice aliases the layer workspace.
//
//dsps:hotpath
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense forward got %d inputs, want %d", len(x), d.In))
	}
	copy(d.lastIn, x)
	out := d.w.W.MulVecTo(d.lastOut, d.lastIn)
	bd := d.b.W.Data()
	for i, z := range out {
		out[i] = d.Act.F(z + bd[i])
	}
	d.seen = true
	return out
}

// Backward accumulates parameter gradients for the cached example given
// dOut = ∂L/∂y and returns ∂L/∂x (workspace-backed).
//
//dsps:hotpath
func (d *Dense) Backward(dOut []float64) []float64 {
	if len(dOut) != d.Out {
		panic(fmt.Sprintf("nn: dense backward got %d grads, want %d", len(dOut), d.Out))
	}
	if !d.seen {
		panic("nn: dense Backward before Forward")
	}
	// δ = dOut ∘ act'(y)
	delta := d.delta
	for i, g := range dOut {
		delta[i] = g * d.Act.Deriv(d.lastOut[i])
	}
	// dW += δ xᵀ ; db += δ ; dx = Wᵀ δ
	dx := d.dx
	zeroVec(dx)
	wGrad := d.w.Grad.Data()
	wData := d.w.W.Data()
	bGrad := d.b.Grad.Data()
	for i, dv := range delta {
		if dv == 0 {
			continue
		}
		gRow := wGrad[i*d.In : (i+1)*d.In]
		for j, xv := range d.lastIn {
			gRow[j] += dv * xv
		}
		bGrad[i] += dv
		wRow := wData[i*d.In : (i+1)*d.In]
		for j, wv := range wRow {
			dx[j] += wv * dv
		}
	}
	return dx
}

// Params returns the layer's learnable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Weights exposes the weight matrix and bias for serialization.
func (d *Dense) Weights() (w, b *mat.Dense) { return d.w.W, d.b.W }

// SetWeights replaces the weight matrix and bias, validating dimensions.
func (d *Dense) SetWeights(w, b *mat.Dense) error {
	if r, c := w.Dims(); r != d.Out || c != d.In {
		return fmt.Errorf("nn: dense weights %dx%d, want %dx%d", r, c, d.Out, d.In)
	}
	if r, c := b.Dims(); r != d.Out || c != 1 {
		return fmt.Errorf("nn: dense bias %dx%d, want %dx1", r, c, d.Out)
	}
	d.w.W = w.Copy()
	d.b.W = b.Copy()
	d.w.Grad = mat.New(d.Out, d.In)
	d.b.Grad = mat.New(d.Out, 1)
	return nil
}
