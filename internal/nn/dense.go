package nn

import (
	"fmt"
	"math/rand"

	"predstream/internal/mat"
)

// Dense is a fully connected layer y = act(Wx + b). It caches its last
// input and output for the backward pass, so a layer instance processes one
// example at a time (the training loops here are purely stochastic).
type Dense struct {
	In, Out int
	Act     Activation

	w *Param // Out×In
	b *Param // Out×1

	lastIn  []float64
	lastOut []float64
}

// NewDense builds a Dense layer with Xavier-initialized weights (He for
// ReLU) and zero biases.
func NewDense(in, out int, act Activation, rng *rand.Rand) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid dense dims %d->%d", in, out))
	}
	w := mat.New(out, in)
	if act.Name == "relu" {
		w.RandHe(rng)
	} else {
		w.RandXavier(rng)
	}
	return &Dense{
		In:  in,
		Out: out,
		Act: act,
		w:   newParam("dense.w", w),
		b:   newParam("dense.b", mat.New(out, 1)),
	}
}

// Forward computes the layer output for x, caching what Backward needs.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: dense forward got %d inputs, want %d", len(x), d.In))
	}
	d.lastIn = mat.CloneVec(x)
	z := d.w.W.MulVec(x)
	out := make([]float64, d.Out)
	for i := range z {
		out[i] = d.Act.F(z[i] + d.b.W.At(i, 0))
	}
	d.lastOut = out
	return mat.CloneVec(out)
}

// Backward accumulates parameter gradients for the cached example given
// dOut = ∂L/∂y and returns ∂L/∂x.
func (d *Dense) Backward(dOut []float64) []float64 {
	if len(dOut) != d.Out {
		panic(fmt.Sprintf("nn: dense backward got %d grads, want %d", len(dOut), d.Out))
	}
	if d.lastIn == nil {
		panic("nn: dense Backward before Forward")
	}
	// δ = dOut ∘ act'(y)
	delta := make([]float64, d.Out)
	for i, g := range dOut {
		delta[i] = g * d.Act.Deriv(d.lastOut[i])
	}
	// dW += δ xᵀ ; db += δ
	for i, dv := range delta {
		if dv == 0 {
			continue
		}
		for j, xv := range d.lastIn {
			d.w.Grad.Set(i, j, d.w.Grad.At(i, j)+dv*xv)
		}
		d.b.Grad.Set(i, 0, d.b.Grad.At(i, 0)+dv)
	}
	// dx = Wᵀ δ
	dx := make([]float64, d.In)
	for i, dv := range delta {
		if dv == 0 {
			continue
		}
		for j := 0; j < d.In; j++ {
			dx[j] += d.w.W.At(i, j) * dv
		}
	}
	return dx
}

// Params returns the layer's learnable parameters.
func (d *Dense) Params() []*Param { return []*Param{d.w, d.b} }

// Weights exposes the weight matrix and bias for serialization.
func (d *Dense) Weights() (w, b *mat.Dense) { return d.w.W, d.b.W }

// SetWeights replaces the weight matrix and bias, validating dimensions.
func (d *Dense) SetWeights(w, b *mat.Dense) error {
	if r, c := w.Dims(); r != d.Out || c != d.In {
		return fmt.Errorf("nn: dense weights %dx%d, want %dx%d", r, c, d.Out, d.In)
	}
	if r, c := b.Dims(); r != d.Out || c != 1 {
		return fmt.Errorf("nn: dense bias %dx%d, want %dx1", r, c, d.Out)
	}
	d.w.W = w.Copy()
	d.b.W = b.Copy()
	d.w.Grad = mat.New(d.Out, d.In)
	d.b.Grad = mat.New(d.Out, 1)
	return nil
}
