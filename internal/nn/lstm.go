package nn

import (
	"fmt"
	"math"
	"math/rand"

	"predstream/internal/mat"
)

// Gate indices into the LSTM parameter arrays.
const (
	gateF = iota // forget
	gateI        // input
	gateG        // candidate
	gateO        // output
	numGates
)

var gateNames = [numGates]string{"f", "i", "g", "o"}

// lstmStep caches everything one timestep's backward pass needs. Every
// slice is owned by the layer workspace and reused across sequences; the
// previous hidden/cell state is read from the preceding step's buffers
// instead of being copied.
type lstmStep struct {
	x     []float64
	gates [numGates][]float64 // post-activation gate values
	c     []float64
	tanhC []float64
	h     []float64
}

// lstmWorkspace is the layer's reusable arena: the step cache grows once
// to the longest sequence seen, and the per-timestep scratch vectors are
// sized from the hidden dimension at construction, so steady-state
// ForwardSeq/BackwardSeq allocate nothing.
type lstmWorkspace struct {
	steps []lstmStep  // cap grows to the max sequence length seen
	n     int         // timesteps cached by the last ForwardSeq
	out   [][]float64 // ForwardSeq return headers, aliasing step.h
	dX    [][]float64 // BackwardSeq return headers + reused buffers

	zero []float64 // all-zero initial hidden/cell state, read-only

	// Backward scratch, one vector of Hidden each.
	dh, do_, dc, dcPrev, dhPrev, dhNext, dcNext []float64
	dz                                          [numGates][]float64
}

func (w *lstmWorkspace) init(hidden int) {
	w.zero = make([]float64, hidden)
	w.dh = make([]float64, hidden)
	w.do_ = make([]float64, hidden)
	w.dc = make([]float64, hidden)
	w.dcPrev = make([]float64, hidden)
	w.dhPrev = make([]float64, hidden)
	w.dhNext = make([]float64, hidden)
	w.dcNext = make([]float64, hidden)
	for g := 0; g < numGates; g++ {
		w.dz[g] = make([]float64, hidden)
	}
}

// ensure grows the step cache to hold n timesteps for dims (in, hidden).
//
//dsps:allocs workspace grown once per shape change; steady-state sequences reuse cached steps
func (w *lstmWorkspace) ensure(in, hidden, n int) {
	for len(w.steps) < n {
		st := lstmStep{
			x:     make([]float64, in),
			c:     make([]float64, hidden),
			tanhC: make([]float64, hidden),
			h:     make([]float64, hidden),
		}
		for g := 0; g < numGates; g++ {
			st.gates[g] = make([]float64, hidden)
		}
		w.steps = append(w.steps, st)
		w.dX = append(w.dX, make([]float64, in))
	}
	if cap(w.out) < n {
		w.out = make([][]float64, n)
	}
	w.out = w.out[:n]
	w.n = n
}

// LSTM is a single recurrent layer with standard LSTM cell dynamics and
// truncated-BPTT training over whole sequences. Like Dense, one instance
// handles one sequence at a time; Replicate produces weight-sharing
// copies for concurrent mini-batch workers.
type LSTM struct {
	In, Hidden int

	wx [numGates]*Param // Hidden×In input weights per gate
	wh [numGates]*Param // Hidden×Hidden recurrent weights per gate
	b  [numGates]*Param // Hidden×1 biases per gate

	ws lstmWorkspace
}

// NewLSTM builds an LSTM layer with Xavier-initialized weights. The forget
// gate bias starts at 1 (the standard trick that keeps early memory open).
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid lstm dims %d->%d", in, hidden))
	}
	l := &LSTM{In: in, Hidden: hidden}
	for g := 0; g < numGates; g++ {
		l.wx[g] = newParam("lstm.wx."+gateNames[g], mat.New(hidden, in).RandXavier(rng))
		l.wh[g] = newParam("lstm.wh."+gateNames[g], mat.New(hidden, hidden).RandXavier(rng))
		bias := mat.New(hidden, 1)
		if g == gateF {
			bias.Fill(1)
		}
		l.b[g] = newParam("lstm.b."+gateNames[g], bias)
	}
	l.ws.init(hidden)
	return l
}

// Replicate implements Recurrent: the replica shares the weight matrices
// (read-only during concurrent forward/backward) but owns its gradients
// and workspace.
func (l *LSTM) Replicate() Recurrent {
	r := &LSTM{In: l.In, Hidden: l.Hidden}
	for g := 0; g < numGates; g++ {
		r.wx[g] = l.wx[g].shareWeights()
		r.wh[g] = l.wh[g].shareWeights()
		r.b[g] = l.b[g].shareWeights()
	}
	r.ws.init(l.Hidden)
	return r
}

// ForwardSeq runs the layer over a sequence of input vectors starting from
// zero state, returning the hidden state at every timestep. The returned
// slices alias the layer workspace and stay valid until the next
// ForwardSeq call on this instance.
//
//dsps:hotpath
func (l *LSTM) ForwardSeq(seq [][]float64) [][]float64 {
	w := &l.ws
	w.ensure(l.In, l.Hidden, len(seq))
	h, c := w.zero, w.zero
	for t, x := range seq {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: lstm step %d got %d inputs, want %d", t, len(x), l.In))
		}
		st := &w.steps[t]
		copy(st.x, x)
		for g := 0; g < numGates; g++ {
			zg := st.gates[g]
			l.wx[g].W.MulVecTo(zg, st.x)
			l.wh[g].W.MulVecAdd(zg, h)
			bd := l.b[g].W.Data()
			for i := range zg {
				zg[i] += bd[i]
			}
		}
		f, in, gg, o := st.gates[gateF], st.gates[gateI], st.gates[gateG], st.gates[gateO]
		sigmoidVec(f)
		sigmoidVec(in)
		tanhVec(gg)
		sigmoidVec(o)
		for i := range st.c {
			st.c[i] = f[i]*c[i] + in[i]*gg[i]
		}
		for i := range st.tanhC {
			st.tanhC[i] = math.Tanh(st.c[i])
		}
		for i := range st.h {
			st.h[i] = o[i] * st.tanhC[i]
		}
		h, c = st.h, st.c
		w.out[t] = st.h
	}
	return w.out
}

// BackwardSeq backpropagates through the cached sequence. dH holds
// ∂L/∂h_t for every timestep (zero vectors where the loss does not touch a
// step). It accumulates parameter gradients and returns ∂L/∂x_t per step;
// the returned slices alias the workspace and stay valid until the next
// BackwardSeq call.
//
//dsps:hotpath
func (l *LSTM) BackwardSeq(dH [][]float64) [][]float64 {
	w := &l.ws
	if len(dH) != w.n {
		panic(fmt.Sprintf("nn: lstm backward got %d grads for %d cached steps", len(dH), w.n))
	}
	dhNext, dcNext := w.dhNext, w.dcNext
	dhPrev, dcPrev := w.dhPrev, w.dcPrev
	zeroVec(dhNext)
	zeroVec(dcNext)
	for t := w.n - 1; t >= 0; t-- {
		st := &w.steps[t]
		cPrev := w.zero
		hPrev := w.zero
		if t > 0 {
			cPrev = w.steps[t-1].c
			hPrev = w.steps[t-1].h
		}
		dh := w.dh
		for i := range dh {
			dh[i] = dH[t][i] + dhNext[i]
		}
		f, in, gg, o := st.gates[gateF], st.gates[gateI], st.gates[gateG], st.gates[gateO]

		// Through h = o ∘ tanh(c).
		do := w.do_
		dc := w.dc
		for i := range dh {
			do[i] = dh[i] * st.tanhC[i]
			dc[i] = dh[i]*o[i]*(1-st.tanhC[i]*st.tanhC[i]) + dcNext[i]
		}
		// Through c = f∘cPrev + i∘g.
		dz := &w.dz
		for i := range dc {
			dcPrev[i] = dc[i] * f[i]
			dz[gateF][i] = dc[i] * cPrev[i] * f[i] * (1 - f[i])
			dz[gateI][i] = dc[i] * gg[i] * in[i] * (1 - in[i])
			dz[gateG][i] = dc[i] * in[i] * (1 - gg[i]*gg[i])
			dz[gateO][i] = do[i] * o[i] * (1 - o[i])
		}

		dx := w.dX[t]
		zeroVec(dx)
		zeroVec(dhPrev)
		for g := 0; g < numGates; g++ {
			dzg := dz[g]
			wxG, whG, bG := l.wx[g], l.wh[g], l.b[g]
			bd := bG.Grad.Data()
			for i, dv := range dzg {
				if dv == 0 {
					continue
				}
				// dWx += dz xᵀ, dWh += dz hPrevᵀ, db += dz.
				wxRow := wxG.Grad.Data()[i*l.In : (i+1)*l.In]
				for j, xv := range st.x {
					wxRow[j] += dv * xv
				}
				whRow := whG.Grad.Data()[i*l.Hidden : (i+1)*l.Hidden]
				for j, hv := range hPrev {
					whRow[j] += dv * hv
				}
				bd[i] += dv
				// dx += Wxᵀ dz, dhPrev += Whᵀ dz.
				wRow := wxG.W.Data()[i*l.In : (i+1)*l.In]
				for j, wv := range wRow {
					dx[j] += wv * dv
				}
				hRow := whG.W.Data()[i*l.Hidden : (i+1)*l.Hidden]
				for j, wv := range hRow {
					dhPrev[j] += wv * dv
				}
			}
		}
		dhNext, dhPrev = dhPrev, dhNext
		dcNext, dcPrev = dcPrev, dcNext
	}
	return w.dX[:w.n]
}

// InSize implements Recurrent.
func (l *LSTM) InSize() int { return l.In }

// HiddenSize implements Recurrent.
func (l *LSTM) HiddenSize() int { return l.Hidden }

// CellType implements Recurrent.
func (l *LSTM) CellType() string { return "lstm" }

// Params returns all learnable parameters of the layer.
func (l *LSTM) Params() []*Param {
	out := make([]*Param, 0, 3*numGates)
	for g := 0; g < numGates; g++ {
		out = append(out, l.wx[g], l.wh[g], l.b[g])
	}
	return out
}

// Weights exposes the per-gate weights for serialization in gate order
// f, i, g, o: input weights, recurrent weights, biases.
func (l *LSTM) Weights() (wx, wh, b []*mat.Dense) {
	for g := 0; g < numGates; g++ {
		wx = append(wx, l.wx[g].W)
		wh = append(wh, l.wh[g].W)
		b = append(b, l.b[g].W)
	}
	return wx, wh, b
}

// SetWeights replaces the layer's weights from the serialized form.
func (l *LSTM) SetWeights(wx, wh, b []*mat.Dense) error {
	if len(wx) != numGates || len(wh) != numGates || len(b) != numGates {
		return fmt.Errorf("nn: lstm SetWeights needs %d matrices per group", numGates)
	}
	for g := 0; g < numGates; g++ {
		if r, c := wx[g].Dims(); r != l.Hidden || c != l.In {
			return fmt.Errorf("nn: lstm wx[%d] is %dx%d, want %dx%d", g, r, c, l.Hidden, l.In)
		}
		if r, c := wh[g].Dims(); r != l.Hidden || c != l.Hidden {
			return fmt.Errorf("nn: lstm wh[%d] is %dx%d, want %dx%d", g, r, c, l.Hidden, l.Hidden)
		}
		if r, c := b[g].Dims(); r != l.Hidden || c != 1 {
			return fmt.Errorf("nn: lstm b[%d] is %dx%d, want %dx1", g, r, c, l.Hidden)
		}
	}
	for g := 0; g < numGates; g++ {
		l.wx[g].W = wx[g].Copy()
		l.wh[g].W = wh[g].Copy()
		l.b[g].W = b[g].Copy()
		l.wx[g].Grad = mat.New(l.Hidden, l.In)
		l.wh[g].Grad = mat.New(l.Hidden, l.Hidden)
		l.b[g].Grad = mat.New(l.Hidden, 1)
	}
	return nil
}

// sigmoidVec applies the logistic function to xs in place; tanhVec the
// hyperbolic tangent. Plain loops (no closure dispatch, no output
// allocation) keep the per-timestep cell math allocation-free.
func sigmoidVec(xs []float64) {
	for i, x := range xs {
		xs[i] = 1 / (1 + math.Exp(-x))
	}
}

func tanhVec(xs []float64) {
	for i, x := range xs {
		xs[i] = math.Tanh(x)
	}
}

func zeroVec(xs []float64) {
	for i := range xs {
		xs[i] = 0
	}
}
