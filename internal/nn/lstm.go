package nn

import (
	"fmt"
	"math"
	"math/rand"

	"predstream/internal/mat"
)

// Gate indices into the LSTM parameter arrays.
const (
	gateF = iota // forget
	gateI        // input
	gateG        // candidate
	gateO        // output
	numGates
)

var gateNames = [numGates]string{"f", "i", "g", "o"}

// lstmStep caches everything one timestep's backward pass needs.
type lstmStep struct {
	x     []float64
	hPrev []float64
	cPrev []float64
	gates [numGates][]float64 // post-activation gate values
	c     []float64
	tanhC []float64
	h     []float64
}

// LSTM is a single recurrent layer with standard LSTM cell dynamics and
// truncated-BPTT training over whole sequences. Like Dense, one instance
// handles one sequence at a time.
type LSTM struct {
	In, Hidden int

	wx [numGates]*Param // Hidden×In input weights per gate
	wh [numGates]*Param // Hidden×Hidden recurrent weights per gate
	b  [numGates]*Param // Hidden×1 biases per gate

	steps []lstmStep
}

// NewLSTM builds an LSTM layer with Xavier-initialized weights. The forget
// gate bias starts at 1 (the standard trick that keeps early memory open).
func NewLSTM(in, hidden int, rng *rand.Rand) *LSTM {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid lstm dims %d->%d", in, hidden))
	}
	l := &LSTM{In: in, Hidden: hidden}
	for g := 0; g < numGates; g++ {
		l.wx[g] = newParam("lstm.wx."+gateNames[g], mat.New(hidden, in).RandXavier(rng))
		l.wh[g] = newParam("lstm.wh."+gateNames[g], mat.New(hidden, hidden).RandXavier(rng))
		bias := mat.New(hidden, 1)
		if g == gateF {
			bias.Fill(1)
		}
		l.b[g] = newParam("lstm.b."+gateNames[g], bias)
	}
	return l
}

// ForwardSeq runs the layer over a sequence of input vectors starting from
// zero state, returning the hidden state at every timestep.
func (l *LSTM) ForwardSeq(seq [][]float64) [][]float64 {
	l.steps = l.steps[:0]
	h := make([]float64, l.Hidden)
	c := make([]float64, l.Hidden)
	out := make([][]float64, len(seq))
	for t, x := range seq {
		if len(x) != l.In {
			panic(fmt.Sprintf("nn: lstm step %d got %d inputs, want %d", t, len(x), l.In))
		}
		step := lstmStep{
			x:     mat.CloneVec(x),
			hPrev: mat.CloneVec(h),
			cPrev: mat.CloneVec(c),
		}
		var z [numGates][]float64
		for g := 0; g < numGates; g++ {
			zg := l.wx[g].W.MulVec(x)
			rec := l.wh[g].W.MulVec(h)
			for i := range zg {
				zg[i] += rec[i] + l.b[g].W.At(i, 0)
			}
			z[g] = zg
		}
		f := applyVec(z[gateF], Sigmoid.F)
		in := applyVec(z[gateI], Sigmoid.F)
		gg := applyVec(z[gateG], math.Tanh)
		o := applyVec(z[gateO], Sigmoid.F)
		cNew := make([]float64, l.Hidden)
		for i := range cNew {
			cNew[i] = f[i]*c[i] + in[i]*gg[i]
		}
		tc := applyVec(cNew, math.Tanh)
		hNew := make([]float64, l.Hidden)
		for i := range hNew {
			hNew[i] = o[i] * tc[i]
		}
		step.gates = [numGates][]float64{f, in, gg, o}
		step.c = cNew
		step.tanhC = tc
		step.h = hNew
		l.steps = append(l.steps, step)
		h, c = hNew, cNew
		out[t] = mat.CloneVec(hNew)
	}
	return out
}

// BackwardSeq backpropagates through the cached sequence. dH holds
// ∂L/∂h_t for every timestep (zero vectors where the loss does not touch a
// step). It accumulates parameter gradients and returns ∂L/∂x_t per step.
func (l *LSTM) BackwardSeq(dH [][]float64) [][]float64 {
	if len(dH) != len(l.steps) {
		panic(fmt.Sprintf("nn: lstm backward got %d grads for %d cached steps", len(dH), len(l.steps)))
	}
	dX := make([][]float64, len(l.steps))
	dhNext := make([]float64, l.Hidden)
	dcNext := make([]float64, l.Hidden)
	for t := len(l.steps) - 1; t >= 0; t-- {
		st := &l.steps[t]
		dh := make([]float64, l.Hidden)
		for i := range dh {
			dh[i] = dH[t][i] + dhNext[i]
		}
		f, in, gg, o := st.gates[gateF], st.gates[gateI], st.gates[gateG], st.gates[gateO]

		// Through h = o ∘ tanh(c).
		do := make([]float64, l.Hidden)
		dc := make([]float64, l.Hidden)
		for i := range dh {
			do[i] = dh[i] * st.tanhC[i]
			dc[i] = dh[i]*o[i]*(1-st.tanhC[i]*st.tanhC[i]) + dcNext[i]
		}
		// Through c = f∘cPrev + i∘g.
		var dz [numGates][]float64
		dz[gateF] = make([]float64, l.Hidden)
		dz[gateI] = make([]float64, l.Hidden)
		dz[gateG] = make([]float64, l.Hidden)
		dz[gateO] = make([]float64, l.Hidden)
		dcPrev := make([]float64, l.Hidden)
		for i := range dc {
			dcPrev[i] = dc[i] * f[i]
			dz[gateF][i] = dc[i] * st.cPrev[i] * f[i] * (1 - f[i])
			dz[gateI][i] = dc[i] * gg[i] * in[i] * (1 - in[i])
			dz[gateG][i] = dc[i] * in[i] * (1 - gg[i]*gg[i])
			dz[gateO][i] = do[i] * o[i] * (1 - o[i])
		}

		dx := make([]float64, l.In)
		dhPrev := make([]float64, l.Hidden)
		for g := 0; g < numGates; g++ {
			dzg := dz[g]
			wxG, whG, bG := l.wx[g], l.wh[g], l.b[g]
			for i, dv := range dzg {
				if dv == 0 {
					continue
				}
				// dWx += dz xᵀ, dWh += dz hPrevᵀ, db += dz.
				wxRow := wxG.Grad.Data()[i*l.In : (i+1)*l.In]
				for j, xv := range st.x {
					wxRow[j] += dv * xv
				}
				whRow := whG.Grad.Data()[i*l.Hidden : (i+1)*l.Hidden]
				for j, hv := range st.hPrev {
					whRow[j] += dv * hv
				}
				bG.Grad.Set(i, 0, bG.Grad.At(i, 0)+dv)
				// dx += Wxᵀ dz, dhPrev += Whᵀ dz.
				wRow := wxG.W.Data()[i*l.In : (i+1)*l.In]
				for j, wv := range wRow {
					dx[j] += wv * dv
				}
				hRow := whG.W.Data()[i*l.Hidden : (i+1)*l.Hidden]
				for j, wv := range hRow {
					dhPrev[j] += wv * dv
				}
			}
		}
		dX[t] = dx
		dhNext, dcNext = dhPrev, dcPrev
	}
	return dX
}

// InSize implements Recurrent.
func (l *LSTM) InSize() int { return l.In }

// HiddenSize implements Recurrent.
func (l *LSTM) HiddenSize() int { return l.Hidden }

// CellType implements Recurrent.
func (l *LSTM) CellType() string { return "lstm" }

// Params returns all learnable parameters of the layer.
func (l *LSTM) Params() []*Param {
	out := make([]*Param, 0, 3*numGates)
	for g := 0; g < numGates; g++ {
		out = append(out, l.wx[g], l.wh[g], l.b[g])
	}
	return out
}

// Weights exposes the per-gate weights for serialization in gate order
// f, i, g, o: input weights, recurrent weights, biases.
func (l *LSTM) Weights() (wx, wh, b []*mat.Dense) {
	for g := 0; g < numGates; g++ {
		wx = append(wx, l.wx[g].W)
		wh = append(wh, l.wh[g].W)
		b = append(b, l.b[g].W)
	}
	return wx, wh, b
}

// SetWeights replaces the layer's weights from the serialized form.
func (l *LSTM) SetWeights(wx, wh, b []*mat.Dense) error {
	if len(wx) != numGates || len(wh) != numGates || len(b) != numGates {
		return fmt.Errorf("nn: lstm SetWeights needs %d matrices per group", numGates)
	}
	for g := 0; g < numGates; g++ {
		if r, c := wx[g].Dims(); r != l.Hidden || c != l.In {
			return fmt.Errorf("nn: lstm wx[%d] is %dx%d, want %dx%d", g, r, c, l.Hidden, l.In)
		}
		if r, c := wh[g].Dims(); r != l.Hidden || c != l.Hidden {
			return fmt.Errorf("nn: lstm wh[%d] is %dx%d, want %dx%d", g, r, c, l.Hidden, l.Hidden)
		}
		if r, c := b[g].Dims(); r != l.Hidden || c != 1 {
			return fmt.Errorf("nn: lstm b[%d] is %dx%d, want %dx1", g, r, c, l.Hidden)
		}
	}
	for g := 0; g < numGates; g++ {
		l.wx[g].W = wx[g].Copy()
		l.wh[g].W = wh[g].Copy()
		l.b[g].W = b[g].Copy()
		l.wx[g].Grad = mat.New(l.Hidden, l.In)
		l.wh[g].Grad = mat.New(l.Hidden, l.Hidden)
		l.b[g].Grad = mat.New(l.Hidden, 1)
	}
	return nil
}

func applyVec(xs []float64, f func(float64) float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = f(x)
	}
	return out
}
