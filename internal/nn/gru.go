package nn

import (
	"fmt"
	"math/rand"

	"predstream/internal/mat"
)

// Recurrent is the contract shared by the recurrent cell types (LSTM,
// GRU): sequence-in/sequence-out with internal caching for BPTT.
type Recurrent interface {
	// ForwardSeq runs the layer over a sequence from zero state and
	// returns the hidden state per timestep. The returned slices alias
	// the layer workspace and stay valid until the next ForwardSeq call.
	ForwardSeq(seq [][]float64) [][]float64
	// BackwardSeq backpropagates per-timestep hidden-state gradients,
	// accumulating parameter gradients and returning input gradients
	// (also workspace-backed).
	BackwardSeq(dH [][]float64) [][]float64
	// Params returns the learnable parameters.
	Params() []*Param
	// InSize and HiddenSize report the layer dimensions.
	InSize() int
	HiddenSize() int
	// CellType names the cell for checkpoints ("lstm", "gru").
	CellType() string
	// Weights returns the per-gate weight groups (input weights,
	// recurrent weights, biases) for serialization.
	Weights() (wx, wh, b []*mat.Dense)
	// SetWeights replaces the weights from the serialized form.
	SetWeights(wx, wh, b []*mat.Dense) error
	// Replicate returns a copy sharing this layer's weight matrices but
	// owning its own gradient accumulators and workspace, for concurrent
	// mini-batch workers.
	Replicate() Recurrent
}

// Interface checks.
var (
	_ Recurrent = (*LSTM)(nil)
	_ Recurrent = (*GRU)(nil)
)

// GRU gate indices.
const (
	gruZ = iota // update
	gruR        // reset
	gruH        // candidate
	numGRUGates
)

var gruGateNames = [numGRUGates]string{"z", "r", "h"}

// gruStep caches one timestep for BPTT; slices are workspace-owned and
// reused across sequences. The previous hidden state is read from the
// preceding step's h.
type gruStep struct {
	x    []float64
	z    []float64
	r    []float64
	hHat []float64
	a    []float64 // r ∘ hPrev, input to the candidate's recurrent term
	h    []float64
}

// gruWorkspace mirrors lstmWorkspace for the GRU cell.
type gruWorkspace struct {
	steps []gruStep
	n     int
	out   [][]float64
	dX    [][]float64

	zero []float64

	dh, dz, dhHat, dhPrev, dhNext, dhPre, da, dr, dzPre, drPre []float64
}

func (w *gruWorkspace) init(hidden int) {
	w.zero = make([]float64, hidden)
	w.dh = make([]float64, hidden)
	w.dz = make([]float64, hidden)
	w.dhHat = make([]float64, hidden)
	w.dhPrev = make([]float64, hidden)
	w.dhNext = make([]float64, hidden)
	w.dhPre = make([]float64, hidden)
	w.da = make([]float64, hidden)
	w.dr = make([]float64, hidden)
	w.dzPre = make([]float64, hidden)
	w.drPre = make([]float64, hidden)
}

// ensure grows the step cache to hold n timesteps for dims (in, hidden).
//
//dsps:allocs workspace grown once per shape change; steady-state sequences reuse cached steps
func (w *gruWorkspace) ensure(in, hidden, n int) {
	for len(w.steps) < n {
		w.steps = append(w.steps, gruStep{
			x:    make([]float64, in),
			z:    make([]float64, hidden),
			r:    make([]float64, hidden),
			hHat: make([]float64, hidden),
			a:    make([]float64, hidden),
			h:    make([]float64, hidden),
		})
		w.dX = append(w.dX, make([]float64, in))
	}
	if cap(w.out) < n {
		w.out = make([][]float64, n)
	}
	w.out = w.out[:n]
	w.n = n
}

// GRU is a gated recurrent unit layer (Cho et al. 2014), the lighter
// alternative cell for the paper's DRNN (~25% fewer parameters than LSTM
// at equal hidden size).
type GRU struct {
	In, Hidden int

	wx [numGRUGates]*Param // Hidden×In
	wh [numGRUGates]*Param // Hidden×Hidden
	b  [numGRUGates]*Param // Hidden×1

	ws gruWorkspace
}

// NewGRU builds a GRU layer with Xavier-initialized weights.
func NewGRU(in, hidden int, rng *rand.Rand) *GRU {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid gru dims %d->%d", in, hidden))
	}
	g := &GRU{In: in, Hidden: hidden}
	for i := 0; i < numGRUGates; i++ {
		g.wx[i] = newParam("gru.wx."+gruGateNames[i], mat.New(hidden, in).RandXavier(rng))
		g.wh[i] = newParam("gru.wh."+gruGateNames[i], mat.New(hidden, hidden).RandXavier(rng))
		g.b[i] = newParam("gru.b."+gruGateNames[i], mat.New(hidden, 1))
	}
	g.ws.init(hidden)
	return g
}

// Replicate implements Recurrent.
func (g *GRU) Replicate() Recurrent {
	r := &GRU{In: g.In, Hidden: g.Hidden}
	for i := 0; i < numGRUGates; i++ {
		r.wx[i] = g.wx[i].shareWeights()
		r.wh[i] = g.wh[i].shareWeights()
		r.b[i] = g.b[i].shareWeights()
	}
	r.ws.init(g.Hidden)
	return r
}

// InSize implements Recurrent.
func (g *GRU) InSize() int { return g.In }

// HiddenSize implements Recurrent.
func (g *GRU) HiddenSize() int { return g.Hidden }

// CellType implements Recurrent.
func (g *GRU) CellType() string { return "gru" }

// ForwardSeq implements Recurrent.
//
//dsps:hotpath
func (g *GRU) ForwardSeq(seq [][]float64) [][]float64 {
	w := &g.ws
	w.ensure(g.In, g.Hidden, len(seq))
	h := w.zero
	for t, x := range seq {
		if len(x) != g.In {
			panic(fmt.Sprintf("nn: gru step %d got %d inputs, want %d", t, len(x), g.In))
		}
		st := &w.steps[t]
		copy(st.x, x)
		g.gatePre(gruZ, st.z, st.x, h)
		g.gatePre(gruR, st.r, st.x, h)
		sigmoidVec(st.z)
		sigmoidVec(st.r)
		for i := range st.a {
			st.a[i] = st.r[i] * h[i]
		}
		g.gatePre(gruH, st.hHat, st.x, st.a)
		tanhVec(st.hHat)
		for i := range st.h {
			st.h[i] = (1-st.z[i])*h[i] + st.z[i]*st.hHat[i]
		}
		h = st.h
		w.out[t] = st.h
	}
	return w.out
}

// gatePre computes dst = Wx·x + Wh·rec + b for one gate, in place.
//
//dsps:hotpath
func (g *GRU) gatePre(gate int, dst, x, rec []float64) {
	g.wx[gate].W.MulVecTo(dst, x)
	g.wh[gate].W.MulVecAdd(dst, rec)
	bd := g.b[gate].W.Data()
	for i := range dst {
		dst[i] += bd[i]
	}
}

// BackwardSeq implements Recurrent.
//
//dsps:hotpath
func (g *GRU) BackwardSeq(dH [][]float64) [][]float64 {
	w := &g.ws
	if len(dH) != w.n {
		panic(fmt.Sprintf("nn: gru backward got %d grads for %d cached steps", len(dH), w.n))
	}
	dhNext, dhPrev := w.dhNext, w.dhPrev
	zeroVec(dhNext)
	for t := w.n - 1; t >= 0; t-- {
		st := &w.steps[t]
		hPrev := w.zero
		if t > 0 {
			hPrev = w.steps[t-1].h
		}
		dh := w.dh
		for i := range dh {
			dh[i] = dH[t][i] + dhNext[i]
		}
		// h = (1-z)∘hPrev + z∘hHat
		dz, dhHat := w.dz, w.dhHat
		for i := range dh {
			dz[i] = dh[i] * (st.hHat[i] - hPrev[i])
			dhHat[i] = dh[i] * st.z[i]
			dhPrev[i] = dh[i] * (1 - st.z[i])
		}
		// Candidate path: hHat = tanh(Wh x + Uh a + b), a = r∘hPrev.
		dhPre := w.dhPre
		for i := range dhHat {
			dhPre[i] = dhHat[i] * (1 - st.hHat[i]*st.hHat[i])
		}
		dx := w.dX[t]
		zeroVec(dx)
		da := w.da
		zeroVec(da)
		g.accumGate(gruH, dhPre, st.x, st.a, dx, da)
		dr := w.dr
		for i := range da {
			dr[i] = da[i] * hPrev[i]
			dhPrev[i] += da[i] * st.r[i]
		}
		// Gate paths.
		dzPre, drPre := w.dzPre, w.drPre
		for i := range dz {
			dzPre[i] = dz[i] * st.z[i] * (1 - st.z[i])
			drPre[i] = dr[i] * st.r[i] * (1 - st.r[i])
		}
		g.accumGate(gruZ, dzPre, st.x, hPrev, dx, dhPrev)
		g.accumGate(gruR, drPre, st.x, hPrev, dx, dhPrev)

		dhNext, dhPrev = dhPrev, dhNext
	}
	return w.dX[:w.n]
}

// accumGate accumulates one gate's weight gradients for pre-activation
// gradient dPre with inputs (x, rec), adding input gradients into dx and
// recurrent-input gradients into dRec.
//
//dsps:hotpath
func (g *GRU) accumGate(gate int, dPre, x, rec, dx, dRec []float64) {
	wxG, whG, bG := g.wx[gate], g.wh[gate], g.b[gate]
	bd := bG.Grad.Data()
	for i, dv := range dPre {
		if dv == 0 {
			continue
		}
		wxRow := wxG.Grad.Data()[i*g.In : (i+1)*g.In]
		for j, xv := range x {
			wxRow[j] += dv * xv
		}
		whRow := whG.Grad.Data()[i*g.Hidden : (i+1)*g.Hidden]
		for j, rv := range rec {
			whRow[j] += dv * rv
		}
		bd[i] += dv
		wRow := wxG.W.Data()[i*g.In : (i+1)*g.In]
		for j, wv := range wRow {
			dx[j] += wv * dv
		}
		hRow := whG.W.Data()[i*g.Hidden : (i+1)*g.Hidden]
		for j, wv := range hRow {
			dRec[j] += wv * dv
		}
	}
}

// Params implements Recurrent.
func (g *GRU) Params() []*Param {
	out := make([]*Param, 0, 3*numGRUGates)
	for i := 0; i < numGRUGates; i++ {
		out = append(out, g.wx[i], g.wh[i], g.b[i])
	}
	return out
}

// Weights implements Recurrent.
func (g *GRU) Weights() (wx, wh, b []*mat.Dense) {
	for i := 0; i < numGRUGates; i++ {
		wx = append(wx, g.wx[i].W)
		wh = append(wh, g.wh[i].W)
		b = append(b, g.b[i].W)
	}
	return wx, wh, b
}

// SetWeights implements Recurrent.
func (g *GRU) SetWeights(wx, wh, b []*mat.Dense) error {
	if len(wx) != numGRUGates || len(wh) != numGRUGates || len(b) != numGRUGates {
		return fmt.Errorf("nn: gru SetWeights needs %d matrices per group", numGRUGates)
	}
	for i := 0; i < numGRUGates; i++ {
		if r, c := wx[i].Dims(); r != g.Hidden || c != g.In {
			return fmt.Errorf("nn: gru wx[%d] is %dx%d, want %dx%d", i, r, c, g.Hidden, g.In)
		}
		if r, c := wh[i].Dims(); r != g.Hidden || c != g.Hidden {
			return fmt.Errorf("nn: gru wh[%d] is %dx%d, want %dx%d", i, r, c, g.Hidden, g.Hidden)
		}
		if r, c := b[i].Dims(); r != g.Hidden || c != 1 {
			return fmt.Errorf("nn: gru b[%d] is %dx%d, want %dx1", i, r, c, g.Hidden)
		}
	}
	for i := 0; i < numGRUGates; i++ {
		g.wx[i].W = wx[i].Copy()
		g.wh[i].W = wh[i].Copy()
		g.b[i].W = b[i].Copy()
		g.wx[i].Grad = mat.New(g.Hidden, g.In)
		g.wh[i].Grad = mat.New(g.Hidden, g.Hidden)
		g.b[i].Grad = mat.New(g.Hidden, 1)
	}
	return nil
}
