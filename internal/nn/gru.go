package nn

import (
	"fmt"
	"math"
	"math/rand"

	"predstream/internal/mat"
)

// Recurrent is the contract shared by the recurrent cell types (LSTM,
// GRU): sequence-in/sequence-out with internal caching for BPTT.
type Recurrent interface {
	// ForwardSeq runs the layer over a sequence from zero state and
	// returns the hidden state per timestep.
	ForwardSeq(seq [][]float64) [][]float64
	// BackwardSeq backpropagates per-timestep hidden-state gradients,
	// accumulating parameter gradients and returning input gradients.
	BackwardSeq(dH [][]float64) [][]float64
	// Params returns the learnable parameters.
	Params() []*Param
	// InSize and HiddenSize report the layer dimensions.
	InSize() int
	HiddenSize() int
	// CellType names the cell for checkpoints ("lstm", "gru").
	CellType() string
	// Weights returns the per-gate weight groups (input weights,
	// recurrent weights, biases) for serialization.
	Weights() (wx, wh, b []*mat.Dense)
	// SetWeights replaces the weights from the serialized form.
	SetWeights(wx, wh, b []*mat.Dense) error
}

// Interface checks.
var (
	_ Recurrent = (*LSTM)(nil)
	_ Recurrent = (*GRU)(nil)
)

// GRU gate indices.
const (
	gruZ = iota // update
	gruR        // reset
	gruH        // candidate
	numGRUGates
)

var gruGateNames = [numGRUGates]string{"z", "r", "h"}

type gruStep struct {
	x     []float64
	hPrev []float64
	z     []float64
	r     []float64
	hHat  []float64
	a     []float64 // r ∘ hPrev, input to the candidate's recurrent term
}

// GRU is a gated recurrent unit layer (Cho et al. 2014), the lighter
// alternative cell for the paper's DRNN (~25% fewer parameters than LSTM
// at equal hidden size).
type GRU struct {
	In, Hidden int

	wx [numGRUGates]*Param // Hidden×In
	wh [numGRUGates]*Param // Hidden×Hidden
	b  [numGRUGates]*Param // Hidden×1

	steps []gruStep
}

// NewGRU builds a GRU layer with Xavier-initialized weights.
func NewGRU(in, hidden int, rng *rand.Rand) *GRU {
	if in <= 0 || hidden <= 0 {
		panic(fmt.Sprintf("nn: invalid gru dims %d->%d", in, hidden))
	}
	g := &GRU{In: in, Hidden: hidden}
	for i := 0; i < numGRUGates; i++ {
		g.wx[i] = newParam("gru.wx."+gruGateNames[i], mat.New(hidden, in).RandXavier(rng))
		g.wh[i] = newParam("gru.wh."+gruGateNames[i], mat.New(hidden, hidden).RandXavier(rng))
		g.b[i] = newParam("gru.b."+gruGateNames[i], mat.New(hidden, 1))
	}
	return g
}

// InSize implements Recurrent.
func (g *GRU) InSize() int { return g.In }

// HiddenSize implements Recurrent.
func (g *GRU) HiddenSize() int { return g.Hidden }

// CellType implements Recurrent.
func (g *GRU) CellType() string { return "gru" }

// ForwardSeq implements Recurrent.
func (g *GRU) ForwardSeq(seq [][]float64) [][]float64 {
	g.steps = g.steps[:0]
	h := make([]float64, g.Hidden)
	out := make([][]float64, len(seq))
	for t, x := range seq {
		if len(x) != g.In {
			panic(fmt.Sprintf("nn: gru step %d got %d inputs, want %d", t, len(x), g.In))
		}
		st := gruStep{x: mat.CloneVec(x), hPrev: mat.CloneVec(h)}
		zPre := g.gatePre(gruZ, x, h)
		rPre := g.gatePre(gruR, x, h)
		st.z = applyVec(zPre, Sigmoid.F)
		st.r = applyVec(rPre, Sigmoid.F)
		st.a = make([]float64, g.Hidden)
		for i := range st.a {
			st.a[i] = st.r[i] * h[i]
		}
		hPre := g.gatePre(gruH, x, st.a)
		st.hHat = applyVec(hPre, math.Tanh)
		hNew := make([]float64, g.Hidden)
		for i := range hNew {
			hNew[i] = (1-st.z[i])*h[i] + st.z[i]*st.hHat[i]
		}
		g.steps = append(g.steps, st)
		h = hNew
		out[t] = mat.CloneVec(hNew)
	}
	return out
}

// gatePre computes Wx·x + Wh·rec + b for one gate.
func (g *GRU) gatePre(gate int, x, rec []float64) []float64 {
	pre := g.wx[gate].W.MulVec(x)
	hTerm := g.wh[gate].W.MulVec(rec)
	for i := range pre {
		pre[i] += hTerm[i] + g.b[gate].W.At(i, 0)
	}
	return pre
}

// BackwardSeq implements Recurrent.
func (g *GRU) BackwardSeq(dH [][]float64) [][]float64 {
	if len(dH) != len(g.steps) {
		panic(fmt.Sprintf("nn: gru backward got %d grads for %d cached steps", len(dH), len(g.steps)))
	}
	dX := make([][]float64, len(g.steps))
	dhNext := make([]float64, g.Hidden)
	for t := len(g.steps) - 1; t >= 0; t-- {
		st := &g.steps[t]
		dh := make([]float64, g.Hidden)
		for i := range dh {
			dh[i] = dH[t][i] + dhNext[i]
		}
		// h = (1-z)∘hPrev + z∘hHat
		dz := make([]float64, g.Hidden)
		dhHat := make([]float64, g.Hidden)
		dhPrev := make([]float64, g.Hidden)
		for i := range dh {
			dz[i] = dh[i] * (st.hHat[i] - st.hPrev[i])
			dhHat[i] = dh[i] * st.z[i]
			dhPrev[i] = dh[i] * (1 - st.z[i])
		}
		// Candidate path: hHat = tanh(Wh x + Uh a + b), a = r∘hPrev.
		dhPre := make([]float64, g.Hidden)
		for i := range dhHat {
			dhPre[i] = dhHat[i] * (1 - st.hHat[i]*st.hHat[i])
		}
		dx := make([]float64, g.In)
		da := make([]float64, g.Hidden)
		g.accumGate(gruH, dhPre, st.x, st.a, dx, da)
		dr := make([]float64, g.Hidden)
		for i := range da {
			dr[i] = da[i] * st.hPrev[i]
			dhPrev[i] += da[i] * st.r[i]
		}
		// Gate paths.
		dzPre := make([]float64, g.Hidden)
		drPre := make([]float64, g.Hidden)
		for i := range dz {
			dzPre[i] = dz[i] * st.z[i] * (1 - st.z[i])
			drPre[i] = dr[i] * st.r[i] * (1 - st.r[i])
		}
		g.accumGate(gruZ, dzPre, st.x, st.hPrev, dx, dhPrev)
		g.accumGate(gruR, drPre, st.x, st.hPrev, dx, dhPrev)

		dX[t] = dx
		dhNext = dhPrev
	}
	return dX
}

// accumGate accumulates one gate's weight gradients for pre-activation
// gradient dPre with inputs (x, rec), adding input gradients into dx and
// recurrent-input gradients into dRec.
func (g *GRU) accumGate(gate int, dPre, x, rec, dx, dRec []float64) {
	wxG, whG, bG := g.wx[gate], g.wh[gate], g.b[gate]
	for i, dv := range dPre {
		if dv == 0 {
			continue
		}
		wxRow := wxG.Grad.Data()[i*g.In : (i+1)*g.In]
		for j, xv := range x {
			wxRow[j] += dv * xv
		}
		whRow := whG.Grad.Data()[i*g.Hidden : (i+1)*g.Hidden]
		for j, rv := range rec {
			whRow[j] += dv * rv
		}
		bG.Grad.Set(i, 0, bG.Grad.At(i, 0)+dv)
		wRow := wxG.W.Data()[i*g.In : (i+1)*g.In]
		for j, wv := range wRow {
			dx[j] += wv * dv
		}
		hRow := whG.W.Data()[i*g.Hidden : (i+1)*g.Hidden]
		for j, wv := range hRow {
			dRec[j] += wv * dv
		}
	}
}

// Params implements Recurrent.
func (g *GRU) Params() []*Param {
	out := make([]*Param, 0, 3*numGRUGates)
	for i := 0; i < numGRUGates; i++ {
		out = append(out, g.wx[i], g.wh[i], g.b[i])
	}
	return out
}

// Weights implements Recurrent.
func (g *GRU) Weights() (wx, wh, b []*mat.Dense) {
	for i := 0; i < numGRUGates; i++ {
		wx = append(wx, g.wx[i].W)
		wh = append(wh, g.wh[i].W)
		b = append(b, g.b[i].W)
	}
	return wx, wh, b
}

// SetWeights implements Recurrent.
func (g *GRU) SetWeights(wx, wh, b []*mat.Dense) error {
	if len(wx) != numGRUGates || len(wh) != numGRUGates || len(b) != numGRUGates {
		return fmt.Errorf("nn: gru SetWeights needs %d matrices per group", numGRUGates)
	}
	for i := 0; i < numGRUGates; i++ {
		if r, c := wx[i].Dims(); r != g.Hidden || c != g.In {
			return fmt.Errorf("nn: gru wx[%d] is %dx%d, want %dx%d", i, r, c, g.Hidden, g.In)
		}
		if r, c := wh[i].Dims(); r != g.Hidden || c != g.Hidden {
			return fmt.Errorf("nn: gru wh[%d] is %dx%d, want %dx%d", i, r, c, g.Hidden, g.Hidden)
		}
		if r, c := b[i].Dims(); r != g.Hidden || c != 1 {
			return fmt.Errorf("nn: gru b[%d] is %dx%d, want %dx1", i, r, c, g.Hidden)
		}
	}
	for i := 0; i < numGRUGates; i++ {
		g.wx[i].W = wx[i].Copy()
		g.wh[i].W = wh[i].Copy()
		g.b[i].W = b[i].Copy()
		g.wx[i].Grad = mat.New(g.Hidden, g.In)
		g.wh[i].Grad = mat.New(g.Hidden, g.Hidden)
		g.b[i].Grad = mat.New(g.Hidden, 1)
	}
	return nil
}
