package nn

import (
	"math"

	"predstream/internal/mat"
)

// Param is a learnable weight tensor paired with its gradient accumulator.
// Optimizers mutate W in place and zero Grad after each step.
type Param struct {
	Name string
	W    *mat.Dense
	Grad *mat.Dense
}

// newParam allocates a parameter and matching zero gradient.
func newParam(name string, w *mat.Dense) *Param {
	r, c := w.Dims()
	return &Param{Name: name, W: w, Grad: mat.New(r, c)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// shareWeights returns a Param that aliases p's weight tensor but owns a
// fresh zero gradient. Worker replicas read the shared weights concurrently
// and accumulate into their private Grad; only the main copy's weights are
// ever stepped by an optimizer.
func (p *Param) shareWeights() *Param {
	r, c := p.W.Dims()
	return &Param{Name: p.Name, W: p.W, Grad: mat.New(r, c)}
}

// GlobalNorm returns the L2 norm of all gradients in params taken together,
// the quantity gradient clipping bounds.
func GlobalNorm(params []*Param) float64 {
	var s float64
	for _, p := range params {
		for _, g := range p.Grad.Data() {
			s += g * g
		}
	}
	return math.Sqrt(s)
}

// ClipGradients scales all gradients so their global norm does not exceed
// maxNorm. A non-positive maxNorm disables clipping. It returns the norm
// observed before clipping.
func ClipGradients(params []*Param, maxNorm float64) float64 {
	norm := GlobalNorm(params)
	if maxNorm <= 0 || norm <= maxNorm || norm == 0 {
		return norm
	}
	scale := maxNorm / norm
	for _, p := range params {
		p.Grad.ScaleInPlace(scale)
	}
	return norm
}
