package nn

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"

	"predstream/internal/mat"
)

var errEmptyDataset = errors.New("nn: empty dataset")

// Dataset holds sequence-to-one training pairs: X[i] is a window of
// timesteps × features, Y[i] its target vector.
type Dataset struct {
	X [][][]float64
	Y [][]float64
}

// Len returns the number of examples.
func (d Dataset) Len() int { return len(d.X) }

// Validate checks the dataset's internal consistency against a network's
// input/output sizes.
func (d Dataset) Validate(inSize, outSize int) error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("nn: dataset has %d inputs and %d targets", len(d.X), len(d.Y))
	}
	for i, seq := range d.X {
		if len(seq) == 0 {
			return fmt.Errorf("nn: example %d has an empty sequence", i)
		}
		for t, x := range seq {
			if len(x) != inSize {
				return fmt.Errorf("nn: example %d step %d has %d features, want %d", i, t, len(x), inSize)
			}
		}
		if len(d.Y[i]) != outSize {
			return fmt.Errorf("nn: example %d target has %d values, want %d", i, len(d.Y[i]), outSize)
		}
	}
	return nil
}

// Split partitions the dataset into a leading train part and trailing test
// part at the given fraction, preserving order (time-series style: the
// test set is strictly later than the training set).
func (d Dataset) Split(trainFrac float64) (train, test Dataset) {
	n := int(float64(d.Len()) * trainFrac)
	if n < 0 {
		n = 0
	}
	if n > d.Len() {
		n = d.Len()
	}
	return Dataset{X: d.X[:n], Y: d.Y[:n]}, Dataset{X: d.X[n:], Y: d.Y[n:]}
}

// TrainConfig controls a training run.
type TrainConfig struct {
	Epochs    int
	Optimizer Optimizer
	Loss      Loss
	ClipNorm  float64 // gradient clipping by global norm; <=0 disables
	Shuffle   bool
	Rng       *rand.Rand // required when Shuffle is true
	// BatchSize accumulates gradients over this many examples before each
	// optimizer step (mini-batch SGD); 0 or 1 steps per example. Gradients
	// are averaged over the batch so the learning rate is batch-size
	// independent.
	BatchSize int
	// Patience stops training after this many epochs without improvement
	// of the epoch loss (the validation loss when ValData is set);
	// 0 disables early stopping.
	Patience int
	// ValData optionally holds a validation set: Patience then tracks the
	// validation loss, and the weights from the best validation epoch are
	// restored when training ends.
	ValData *Dataset
	// OnEpoch, if set, is invoked with (epoch, meanLoss) after each epoch;
	// returning false stops training early.
	OnEpoch func(epoch int, loss float64) bool
	// Workers is the number of replicas running Forward/Backward
	// concurrently within each mini-batch: 0 uses runtime.GOMAXPROCS(0),
	// 1 runs inline on the calling goroutine. Results are bitwise-identical
	// for any value (gradients reduce in example order; see DESIGN.md,
	// "Training engine"). Values above BatchSize buy nothing: examples
	// within one batch are the only available parallelism.
	Workers int
}

// effectiveWorkers resolves a Workers knob to a concrete count.
func effectiveWorkers(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Train runs stochastic training of net on data and returns the mean loss
// per epoch.
func Train(net *Network, data Dataset, cfg TrainConfig) ([]float64, error) {
	if err := data.Validate(net.InSize(), net.OutSize()); err != nil {
		return nil, err
	}
	if data.Len() == 0 {
		return nil, errEmptyDataset
	}
	if cfg.Epochs <= 0 {
		return nil, fmt.Errorf("nn: non-positive epoch count %d", cfg.Epochs)
	}
	if cfg.Optimizer == nil {
		cfg.Optimizer = NewAdam(1e-3)
	}
	if cfg.Loss == nil {
		cfg.Loss = MSE{}
	}
	if cfg.Shuffle && cfg.Rng == nil {
		return nil, fmt.Errorf("nn: Shuffle requires an Rng")
	}
	if cfg.ValData != nil {
		if err := cfg.ValData.Validate(net.InSize(), net.OutSize()); err != nil {
			return nil, fmt.Errorf("nn: validation set: %w", err)
		}
		if cfg.ValData.Len() == 0 {
			return nil, fmt.Errorf("nn: empty validation set")
		}
	}
	dropout := net.DropoutP > 0
	var baseSeed int64
	if dropout {
		rng := cfg.Rng
		if rng == nil {
			rng = rand.New(rand.NewSource(1))
		}
		baseSeed = rng.Int63()
	}
	batch := cfg.BatchSize
	if batch <= 0 {
		batch = 1
	}
	eng := newEngine(net, cfg.Loss, effectiveWorkers(cfg.Workers), baseSeed, dropout)
	params := net.Params()
	order := make([]int, data.Len())
	for i := range order {
		order[i] = i
	}
	losses := make([]float64, 0, cfg.Epochs)
	best := -1.0
	sinceBest := 0
	var bestWeights []*mat.Dense
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		if cfg.Shuffle {
			cfg.Rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		}
		var total float64
		for start := 0; start < len(order); start += batch {
			end := start + batch
			if end > len(order) {
				end = len(order)
			}
			total += eng.runBatch(data, order[start:end], epoch, start)
			if count := end - start; count > 1 {
				scale := 1 / float64(count)
				for _, p := range params {
					p.Grad.ScaleInPlace(scale)
				}
			}
			ClipGradients(params, cfg.ClipNorm)
			cfg.Optimizer.Step(params)
		}
		mean := total / float64(data.Len())
		losses = append(losses, mean)
		if cfg.OnEpoch != nil && !cfg.OnEpoch(epoch, mean) {
			break
		}
		// Track the monitored loss: validation when provided, training
		// otherwise.
		monitored := mean
		if cfg.ValData != nil {
			// The engine's replicas double as the validation evaluator; it
			// flips them to inference mode itself, so there is no hand-rolled
			// dropout toggle here anymore.
			monitored = eng.evaluate(cfg.ValData)
		}
		improved := best < 0 || monitored < best
		if improved {
			best = monitored
			sinceBest = 0
			if cfg.ValData != nil {
				bestWeights = net.SnapshotWeights()
			}
		} else {
			sinceBest++
			if cfg.Patience > 0 && sinceBest >= cfg.Patience {
				break
			}
		}
	}
	if bestWeights != nil {
		net.RestoreWeights(bestWeights)
	}
	return losses, nil
}

// EvaluateLoss returns the mean loss of net over data without training.
func EvaluateLoss(net *Network, data Dataset, loss Loss) (float64, error) {
	if err := data.Validate(net.InSize(), net.OutSize()); err != nil {
		return 0, err
	}
	if data.Len() == 0 {
		return 0, errEmptyDataset
	}
	if loss == nil {
		loss = MSE{}
	}
	var total float64
	for i := range data.X {
		total += loss.Value(net.Forward(data.X[i]), data.Y[i])
	}
	return total / float64(data.Len()), nil
}
