package nn

import (
	"math"
	"math/rand"
	"testing"
)

// engineDataset builds a deterministic synthetic regression set.
func engineDataset(n, seqLen, in, out int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{}
	for i := 0; i < n; i++ {
		seq := make([][]float64, seqLen)
		var sum float64
		for t := range seq {
			x := make([]float64, in)
			for j := range x {
				x[j] = rng.NormFloat64() * 0.5
				sum += x[j]
			}
			seq[t] = x
		}
		y := make([]float64, out)
		for j := range y {
			y[j] = math.Tanh(sum / float64(seqLen*in))
		}
		ds.X = append(ds.X, seq)
		ds.Y = append(ds.Y, y)
	}
	return ds
}

func engineArch() Arch {
	return Arch{In: 4, LSTMHidden: []int{8}, DenseHidden: []int{6}, Out: 2}
}

// trainLossesWithWorkers trains a fresh, identically seeded network with the
// given worker count and returns the per-epoch losses plus final weights.
func trainLossesWithWorkers(t *testing.T, arch Arch, workers int) ([]float64, []float64) {
	t.Helper()
	net := NewNetwork(arch, rand.New(rand.NewSource(42)))
	ds := engineDataset(24, 6, arch.In, arch.Out, 7)
	losses, err := Train(net, ds, TrainConfig{
		Epochs:    4,
		Optimizer: NewAdam(5e-3),
		Loss:      MSE{},
		BatchSize: 6,
		Shuffle:   true,
		Rng:       rand.New(rand.NewSource(99)),
		Workers:   workers,
	})
	if err != nil {
		t.Fatalf("Train(workers=%d): %v", workers, err)
	}
	var flat []float64
	for _, p := range net.Params() {
		flat = append(flat, p.W.Data()...)
	}
	return losses, flat
}

// TestTrainWorkersDeterminism is the fixed-seed loss-curve equivalence
// check from the training-engine contract: any worker count must produce
// bitwise-identical per-epoch losses and final weights, because gradients
// reduce in example order and losses sum in position order.
func TestTrainWorkersDeterminism(t *testing.T) {
	arch := engineArch()
	baseLosses, baseWeights := trainLossesWithWorkers(t, arch, 1)
	for _, workers := range []int{2, 4} {
		losses, weights := trainLossesWithWorkers(t, arch, workers)
		if len(losses) != len(baseLosses) {
			t.Fatalf("workers=%d ran %d epochs, workers=1 ran %d", workers, len(losses), len(baseLosses))
		}
		for e := range losses {
			if losses[e] != baseLosses[e] {
				t.Fatalf("workers=%d epoch %d loss %v != workers=1 loss %v (diff %g)",
					workers, e, losses[e], baseLosses[e], losses[e]-baseLosses[e])
			}
		}
		for i := range weights {
			if weights[i] != baseWeights[i] {
				t.Fatalf("workers=%d final weight %d = %v != workers=1 %v", workers, i, weights[i], baseWeights[i])
			}
		}
	}
}

// TestTrainWorkersDeterminismDropout repeats the equivalence check with
// dropout enabled: per-example masks are seeded from (baseSeed, epoch,
// position), never from the worker, so the curve must still match bitwise.
func TestTrainWorkersDeterminismDropout(t *testing.T) {
	arch := engineArch()
	arch.Dropout = 0.3
	baseLosses, baseWeights := trainLossesWithWorkers(t, arch, 1)
	losses, weights := trainLossesWithWorkers(t, arch, 4)
	for e := range losses {
		if losses[e] != baseLosses[e] {
			t.Fatalf("dropout: workers=4 epoch %d loss %v != workers=1 loss %v", e, losses[e], baseLosses[e])
		}
	}
	for i := range weights {
		if weights[i] != baseWeights[i] {
			t.Fatalf("dropout: workers=4 final weight %d diverged", i)
		}
	}
	// Sanity: dropout actually fired (losses differ from the no-dropout run).
	plain, _ := trainLossesWithWorkers(t, engineArch(), 1)
	same := true
	for e := range plain {
		if plain[e] != baseLosses[e] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("dropout run produced identical losses to the no-dropout run; masks not applied?")
	}
}

// TestTrainWorkersValidationDeterminism checks the validation-loss path
// (parallel evaluator + best-weight restoration) is also worker-invariant.
func TestTrainWorkersValidationDeterminism(t *testing.T) {
	arch := engineArch()
	run := func(workers int) []float64 {
		net := NewNetwork(arch, rand.New(rand.NewSource(5)))
		train := engineDataset(20, 5, arch.In, arch.Out, 11)
		val := engineDataset(8, 5, arch.In, arch.Out, 13)
		_, err := Train(net, train, TrainConfig{
			Epochs:    3,
			Optimizer: NewSGD(0.05, 0),
			BatchSize: 5,
			ValData:   &val,
			Workers:   workers,
		})
		if err != nil {
			t.Fatalf("Train(workers=%d): %v", workers, err)
		}
		var flat []float64
		for _, p := range net.Params() {
			flat = append(flat, p.W.Data()...)
		}
		return flat
	}
	w1, w4 := run(1), run(4)
	for i := range w1 {
		if w1[i] != w4[i] {
			t.Fatalf("validation path: weight %d diverged between workers=1 and workers=4", i)
		}
	}
}

// TestReplicateSharesWeightsOwnsGrads verifies the replica contract: same
// forward outputs, weight mutations on the main copy visible to replicas,
// and gradient accumulation fully isolated.
func TestReplicateSharesWeightsOwnsGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(Arch{In: 3, LSTMHidden: []int{4}, Out: 1, Cell: "gru"}, rng)
	rep := net.Replicate()
	seq := [][]float64{{0.1, -0.2, 0.3}, {0.4, 0.0, -0.5}}

	a := net.Forward(seq)
	got := append([]float64(nil), a...)
	b := rep.Forward(seq)
	for i := range got {
		if got[i] != b[i] {
			t.Fatalf("replica forward[%d] = %v, main = %v", i, b[i], got[i])
		}
	}

	rep.Backward([]float64{1})
	for _, p := range net.Params() {
		if p.Grad.Norm() != 0 {
			t.Fatalf("replica Backward leaked into main grad %s", p.Name)
		}
	}
	var repAccum float64
	for _, p := range rep.Params() {
		repAccum += p.Grad.Norm()
	}
	if repAccum == 0 {
		t.Fatal("replica Backward accumulated nothing")
	}

	// In-place weight mutation on the main copy must be visible to the replica.
	net.Params()[0].W.Data()[0] += 0.25
	c := net.Forward(seq)
	got = append(got[:0], c...)
	d := rep.Forward(seq)
	for i := range got {
		if got[i] != d[i] {
			t.Fatalf("replica did not observe main weight update")
		}
	}
}

// TestGradCheckAfterWorkspaceReuse runs the cells over sequences of varying
// length to exercise workspace growth and reuse, then gradchecks: stale
// state in a reused buffer would show up as a wrong analytic gradient.
func TestGradCheckAfterWorkspaceReuse(t *testing.T) {
	for _, cell := range []string{"lstm", "gru"} {
		rng := rand.New(rand.NewSource(17))
		net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3, 3}, DenseHidden: []int{4}, Out: 1, Cell: cell}, rng)
		dataRng := rand.New(rand.NewSource(23))
		mkSeq := func(n int) [][]float64 {
			seq := make([][]float64, n)
			for t := range seq {
				seq[t] = []float64{dataRng.NormFloat64(), dataRng.NormFloat64()}
			}
			return seq
		}
		// Longer sequence first, then shorter: reuse must not read stale tail steps.
		for _, n := range []int{6, 3, 5} {
			pred := net.Forward(mkSeq(n))
			net.Backward([]float64{pred[0]})
		}
		for _, p := range net.Params() {
			p.ZeroGrad()
		}
		worst := GradCheck(net, mkSeq(4), []float64{0.3}, MSE{}, 1e-5)
		if worst > 1e-4 {
			t.Fatalf("%s: gradcheck after workspace reuse: worst relative error %v", cell, worst)
		}
	}
}

// TestEvaluateLossParallelMatchesSerial pins the bitwise agreement between
// the serial and fanned-out evaluators.
func TestEvaluateLossParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	net := NewNetwork(engineArch(), rng)
	ds := engineDataset(17, 5, 4, 2, 37)
	want, err := EvaluateLoss(net, ds, MSE{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 1, 3, 8} {
		got, err := EvaluateLossParallel(net, ds, MSE{}, workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("EvaluateLossParallel(workers=%d) = %v, serial = %v", workers, got, want)
		}
	}
}

// TestExampleSeedUniqueness guards the seed mixer against trivial
// collisions across nearby (epoch, position) pairs.
func TestExampleSeedUniqueness(t *testing.T) {
	seen := map[int64]bool{}
	for epoch := 0; epoch < 16; epoch++ {
		for pos := 0; pos < 256; pos++ {
			s := exampleSeed(12345, epoch, pos)
			if seen[s] {
				t.Fatalf("duplicate example seed at epoch=%d pos=%d", epoch, pos)
			}
			seen[s] = true
		}
	}
}
