package nn

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

func randSeqs(rng *rand.Rand, b, t, in int) [][][]float64 {
	seqs := make([][][]float64, b)
	for i := range seqs {
		seq := make([][]float64, t)
		for s := range seq {
			row := make([]float64, in)
			for d := range row {
				row[d] = rng.NormFloat64()
			}
			seq[s] = row
		}
		seqs[i] = seq
	}
	return seqs
}

func testArchs() []Arch {
	return []Arch{
		{In: 3, LSTMHidden: []int{8}, Out: 1},
		{In: 5, LSTMHidden: []int{16, 8}, DenseHidden: []int{6}, Out: 2},
		{In: 4, LSTMHidden: []int{8}, DenseHidden: []int{5}, Out: 1, Cell: "gru"},
		{In: 9, LSTMHidden: []int{12, 12}, DenseHidden: []int{8}, Out: 1, Cell: "gru", HiddenAct: ReLU},
	}
}

// TestBatchRunnerMatchesForward pins the core contract: the batched GEMM
// forward path produces bitwise-identical outputs to the per-sequence
// inference path, for LSTM and GRU stacks, at every batch size including
// the micro-kernel remainder lanes.
func TestBatchRunnerMatchesForward(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for ai, arch := range testArchs() {
		net := NewNetwork(arch, rng)
		runner := NewBatchRunner(net, BatchOptions{})
		for _, B := range []int{1, 2, 4, 5, 9} {
			seqs := randSeqs(rng, B, 7, arch.In)
			dst := make([][]float64, B)
			for i := range dst {
				dst[i] = make([]float64, arch.Out)
			}
			if err := runner.Forward(seqs, dst); err != nil {
				t.Fatalf("arch %d B=%d: %v", ai, B, err)
			}
			for b, seq := range seqs {
				want := net.Forward(seq)
				for j := range want {
					if dst[b][j] != want[j] {
						t.Fatalf("arch %d B=%d seq %d out %d: batched %v != serial %v",
							ai, B, b, j, dst[b][j], want[j])
					}
				}
			}
		}
	}
}

func TestBatchRunnerPreScale(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	arch := Arch{In: 4, LSTMHidden: []int{8}, Out: 1}
	net := NewNetwork(arch, rng)
	scale := func(dst, src []float64) {
		for i, v := range src {
			dst[i] = (v - 2) / 3
		}
	}
	runner := NewBatchRunner(net, BatchOptions{PreScale: scale})
	seqs := randSeqs(rng, 3, 5, arch.In)
	dst := [][]float64{{0}, {0}, {0}}
	if err := runner.Forward(seqs, dst); err != nil {
		t.Fatal(err)
	}
	// Reference: scale by hand, then plain forward.
	for b, seq := range seqs {
		scaled := make([][]float64, len(seq))
		for t := range seq {
			scaled[t] = make([]float64, len(seq[t]))
			scale(scaled[t], seq[t])
		}
		want := net.Forward(scaled)
		if dst[b][0] != want[0] {
			t.Fatalf("seq %d: prescaled batch %v != reference %v", b, dst[b][0], want[0])
		}
	}
}

// TestBatchRunnerConcurrent hammers one runner from many goroutines; with
// -race this pins the sync.Pool workspace isolation (no cross-request
// state sharing, every caller gets its own rows back).
func TestBatchRunnerConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	arch := Arch{In: 4, LSTMHidden: []int{8, 8}, DenseHidden: []int{6}, Out: 1}
	net := NewNetwork(arch, rng)
	runner := NewBatchRunner(net, BatchOptions{})

	// Precompute references serially (net.Forward mutates layer caches, so
	// it is not used concurrently).
	const workers = 8
	const iters = 20
	seqs := make([][][][]float64, workers)
	want := make([][]float64, workers)
	for w := 0; w < workers; w++ {
		seqs[w] = randSeqs(rng, 3, 6, arch.In)
		for _, seq := range seqs[w] {
			want[w] = append(want[w], net.Forward(seq)[0])
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dst := [][]float64{{0}, {0}, {0}}
			for i := 0; i < iters; i++ {
				if err := runner.Forward(seqs[w], dst); err != nil {
					errs <- err
					return
				}
				for b := range dst {
					if dst[b][0] != want[w][b] {
						errs <- fmt.Errorf("worker %d seq %d: got %v want %v", w, b, dst[b][0], want[w][b])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestBatchRunnerShapeErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	net := NewNetwork(Arch{In: 3, LSTMHidden: []int{4}, Out: 1}, rng)
	runner := NewBatchRunner(net, BatchOptions{})
	cases := []struct {
		name string
		seqs [][][]float64
		dst  [][]float64
	}{
		{"empty batch", nil, nil},
		{"empty sequence", [][][]float64{{}}, [][]float64{{0}}},
		{"ragged steps", [][][]float64{{{1, 2, 3}}, {{1, 2, 3}, {1, 2, 3}}}, [][]float64{{0}, {0}}},
		{"bad features", [][][]float64{{{1, 2}}}, [][]float64{{0}}},
		{"bad dst len", [][][]float64{{{1, 2, 3}}}, nil},
		{"bad dst width", [][][]float64{{{1, 2, 3}}}, [][]float64{{0, 0}}},
	}
	for _, c := range cases {
		if err := runner.Forward(c.seqs, c.dst); err == nil {
			t.Fatalf("%s: expected error", c.name)
		}
	}
}

// BenchmarkBatchForward compares batched against per-sequence forward at
// the DRNN serving shape (window 10, 9 features, 32+32 LSTM, 16 dense).
func BenchmarkBatchForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arch := Arch{In: 9, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}
	net := NewNetwork(arch, rng)
	runner := NewBatchRunner(net, BatchOptions{})
	for _, B := range []int{1, 8, 32} {
		seqs := randSeqs(rng, B, 10, arch.In)
		dst := make([][]float64, B)
		for i := range dst {
			dst[i] = make([]float64, 1)
		}
		b.Run(fmt.Sprintf("B%d", B), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := runner.Forward(seqs, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/window")
		})
	}
}

// BenchmarkSerialForward is the per-sequence baseline for
// BenchmarkBatchForward.
func BenchmarkSerialForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arch := Arch{In: 9, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}
	net := NewNetwork(arch, rng)
	seqs := randSeqs(rng, 32, 10, arch.In)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		net.Forward(seqs[i%len(seqs)])
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/window")
}

// TestWrapAliasInvariant guards the workspace-arena assumption: growing a
// buf preserves previously returned views only until the next growth, so
// the runner never holds a view across an ensure call. This is exercised
// indirectly everywhere; the explicit check documents the contract.
func TestWrapAliasInvariant(t *testing.T) {
	var b buf
	m1 := b.mat(2, 2)
	m1.Set(0, 0, 42)
	m2 := b.mat(2, 2) // same capacity: aliases
	if m2.At(0, 0) != 42 {
		t.Fatal("expected alias of backing buffer")
	}
}
