package nn

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"predstream/internal/mat"
)

// TestQuantizeTensorRoundTrip is the per-layer property test: for any
// tensor, quantize→dequantize error is bounded by Scale/2 per element, and
// the scale is maxAbs/127 (symmetric scheme).
func TestQuantizeTensorRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		rows := 1 + rng.Intn(40)
		cols := 1 + rng.Intn(40)
		m := mat.New(rows, cols)
		switch trial % 3 {
		case 0:
			m.RandUniform(rng, math.Pow(10, float64(rng.Intn(7)-3)))
		case 1:
			m.RandXavier(rng)
		case 2: // leave zero: degenerate all-zero tensor
		}
		q := QuantizeTensor(m)
		if wantScale := m.MaxAbs() / 127; m.MaxAbs() > 0 && q.Scale != wantScale {
			t.Fatalf("trial %d: scale %v, want %v", trial, q.Scale, wantScale)
		}
		back := q.Dequantize()
		bound := q.Scale/2 + 1e-12
		for i, v := range m.Data() {
			if diff := math.Abs(v - back.Data()[i]); diff > bound {
				t.Fatalf("trial %d: round-trip error %v exceeds scale/2 = %v", trial, diff, bound)
			}
		}
	}
}

// TestQuantizeTensorSaturation pins the clamp: values beyond ±maxAbs
// cannot appear, and the extreme element maps to ±127 exactly.
func TestQuantizeTensorSaturation(t *testing.T) {
	m := mat.FromSlice(1, 3, []float64{-2.54, 0, 2.54})
	q := QuantizeTensor(m)
	if q.Data[0] != -127 || q.Data[1] != 0 || q.Data[2] != 127 {
		t.Fatalf("unexpected codes %v", q.Data)
	}
}

// TestQuantForwardCloseToFloat is the end-to-end property test at the nn
// level: for random (untrained) LSTM and GRU stacks the int8 forward stays
// within a small tolerance of the float64 forward. The fitted-model,
// seed-corpus variant with the golden-pinned max |Δ| lives in
// internal/drnn (TestInferenceQuantizedGolden).
func TestQuantForwardCloseToFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for ai, arch := range testArchs() {
		net := NewNetwork(arch, rng)
		float := NewBatchRunner(net, BatchOptions{})
		quant := Quantize(net).NewRunner(BatchOptions{})
		const B = 6
		seqs := randSeqs(rng, B, 9, arch.In)
		fOut := make([][]float64, B)
		qOut := make([][]float64, B)
		for i := range fOut {
			fOut[i] = make([]float64, arch.Out)
			qOut[i] = make([]float64, arch.Out)
		}
		if err := float.Forward(seqs, fOut); err != nil {
			t.Fatal(err)
		}
		if err := quant.Forward(seqs, qOut); err != nil {
			t.Fatal(err)
		}
		for b := 0; b < B; b++ {
			for j := range fOut[b] {
				diff := math.Abs(fOut[b][j] - qOut[b][j])
				if diff > 0.05 {
					t.Fatalf("arch %d seq %d out %d: |float-int8| = %v (float %v, int8 %v)",
						ai, b, j, diff, fOut[b][j], qOut[b][j])
				}
			}
		}
	}
}

// TestQuantRunnerBatchInvariance pins that the quantized batched path is
// batch-size invariant: evaluating a window alone or inside a batch gives
// identical results (per-row dynamic scales make rows independent).
func TestQuantRunnerBatchInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	arch := Arch{In: 5, LSTMHidden: []int{12}, DenseHidden: []int{6}, Out: 1}
	runner := Quantize(NewNetwork(arch, rng)).NewRunner(BatchOptions{})
	const B = 7
	seqs := randSeqs(rng, B, 8, arch.In)
	batched := make([][]float64, B)
	for i := range batched {
		batched[i] = make([]float64, 1)
	}
	if err := runner.Forward(seqs, batched); err != nil {
		t.Fatal(err)
	}
	for b := 0; b < B; b++ {
		solo := []float64{0}
		if err := runner.ForwardOne(seqs[b], solo); err != nil {
			t.Fatal(err)
		}
		if solo[0] != batched[b][0] {
			t.Fatalf("seq %d: solo %v != batched %v", b, solo[0], batched[b][0])
		}
	}
}

// TestQuantWeightBytes pins the 8× weight-footprint reduction claim.
func TestQuantWeightBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	arch := Arch{In: 9, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}
	net := NewNetwork(arch, rng)
	q := Quantize(net)
	floatBytes := 0
	for _, p := range net.Params() {
		r, c := p.W.Dims()
		if c == 1 { // biases stay float in the quantized model
			continue
		}
		floatBytes += 8 * r * c
	}
	if got := 8 * q.WeightBytes(); got != floatBytes {
		t.Fatalf("quantized weight bytes ×8 = %d, want float weight bytes %d", got, floatBytes)
	}
}

// TestQuantRunnerConcurrent exercises the pooled quant workspaces under
// -race.
func TestQuantRunnerConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	arch := Arch{In: 4, LSTMHidden: []int{8}, Out: 1, Cell: "gru"}
	runner := Quantize(NewNetwork(arch, rng)).NewRunner(BatchOptions{})
	const workers = 6
	seqs := make([][][][]float64, workers)
	want := make([]float64, workers)
	for w := range seqs {
		seqs[w] = randSeqs(rng, 2, 5, arch.In)
		out := [][]float64{{0}, {0}}
		if err := runner.Forward(seqs[w], out); err != nil {
			t.Fatal(err)
		}
		want[w] = out[0][0]
	}
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			dst := [][]float64{{0}, {0}}
			for i := 0; i < 25; i++ {
				if err := runner.Forward(seqs[w], dst); err != nil {
					done <- err
					return
				}
				if dst[0][0] != want[w] {
					done <- fmt.Errorf("worker %d: got %v want %v", w, dst[0][0], want[w])
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// BenchmarkQuantForward measures the int8 batched forward at the serving
// shape, for the E14 throughput comparison.
func BenchmarkQuantForward(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	arch := Arch{In: 9, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}
	runner := Quantize(NewNetwork(arch, rng)).NewRunner(BatchOptions{})
	for _, B := range []int{1, 8, 32} {
		seqs := randSeqs(rng, B, 10, arch.In)
		dst := make([][]float64, B)
		for i := range dst {
			dst[i] = make([]float64, 1)
		}
		b.Run(fmt.Sprintf("B%d", B), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := runner.Forward(seqs, dst); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*B), "ns/window")
		})
	}
}
