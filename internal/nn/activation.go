// Package nn implements the from-scratch neural-network substrate the DRNN
// predictor is built on: dense and LSTM layers, losses, optimizers,
// truncated backpropagation through time, gradient clipping, and model
// serialization. Everything operates on float64 with batch size one per
// sequence, which is the regime of the paper's small per-worker predictors.
//
// Training is seed-deterministic (bitwise-identical for any Workers value);
// dspslint enforces the package's randomness discipline.
//
//dsps:deterministic
package nn

import "math"

// Activation is a differentiable element-wise nonlinearity. Deriv takes the
// activation *output* y (not the pre-activation), which is sufficient for
// sigmoid/tanh/relu/identity and keeps the backward pass cache small.
type Activation struct {
	Name  string
	F     func(x float64) float64
	Deriv func(y float64) float64
}

// Sigmoid is the logistic activation.
var Sigmoid = Activation{
	Name:  "sigmoid",
	F:     func(x float64) float64 { return 1 / (1 + math.Exp(-x)) },
	Deriv: func(y float64) float64 { return y * (1 - y) },
}

// Tanh is the hyperbolic-tangent activation.
var Tanh = Activation{
	Name:  "tanh",
	F:     math.Tanh,
	Deriv: func(y float64) float64 { return 1 - y*y },
}

// ReLU is the rectified linear activation.
var ReLU = Activation{
	Name: "relu",
	F: func(x float64) float64 {
		if x > 0 {
			return x
		}
		return 0
	},
	Deriv: func(y float64) float64 {
		if y > 0 {
			return 1
		}
		return 0
	},
}

// Identity is the linear (no-op) activation used by regression heads.
var Identity = Activation{
	Name:  "identity",
	F:     func(x float64) float64 { return x },
	Deriv: func(float64) float64 { return 1 },
}

// ActivationByName returns the named activation, defaulting to Identity for
// unknown names; checkpoint loading uses it to rebuild layers.
func ActivationByName(name string) Activation {
	switch name {
	case "sigmoid":
		return Sigmoid
	case "tanh":
		return Tanh
	case "relu":
		return ReLU
	default:
		return Identity
	}
}
