package nn

import (
	"math"

	"predstream/internal/mat"
)

// Optimizer updates parameters from their accumulated gradients and zeroes
// the gradients. Implementations keep per-parameter state keyed by the
// *Param pointer, so a given optimizer instance must always be stepped with
// the same parameter set.
type Optimizer interface {
	Step(params []*Param)
	Name() string
}

// SGD is stochastic gradient descent with optional classical momentum.
type SGD struct {
	LR       float64
	Momentum float64

	velocity map[*Param]*mat.Dense
}

// NewSGD returns an SGD optimizer with the given learning rate and
// momentum (0 disables momentum).
func NewSGD(lr, momentum float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, velocity: make(map[*Param]*mat.Dense)}
}

// Name implements Optimizer.
func (s *SGD) Name() string { return "sgd" }

// Step implements Optimizer.
func (s *SGD) Step(params []*Param) {
	for _, p := range params {
		if s.Momentum > 0 {
			v, ok := s.velocity[p]
			if !ok {
				r, c := p.W.Dims()
				v = mat.New(r, c)
				s.velocity[p] = v
			}
			vd, gd, wd := v.Data(), p.Grad.Data(), p.W.Data()
			for i := range vd {
				vd[i] = s.Momentum*vd[i] - s.LR*gd[i]
				wd[i] += vd[i]
			}
		} else {
			gd, wd := p.Grad.Data(), p.W.Data()
			for i := range gd {
				wd[i] -= s.LR * gd[i]
			}
		}
		p.ZeroGrad()
	}
}

// Adam is the Adam optimizer (Kingma & Ba 2015) with bias correction, the
// optimizer the paper's DRNN training uses.
type Adam struct {
	LR, Beta1, Beta2, Eps float64

	t int
	m map[*Param]*mat.Dense
	v map[*Param]*mat.Dense
}

// NewAdam returns an Adam optimizer with standard defaults for any field
// left at zero (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(lr float64) *Adam {
	return &Adam{
		LR:    lr,
		Beta1: 0.9,
		Beta2: 0.999,
		Eps:   1e-8,
		m:     make(map[*Param]*mat.Dense),
		v:     make(map[*Param]*mat.Dense),
	}
}

// Name implements Optimizer.
func (a *Adam) Name() string { return "adam" }

// Step implements Optimizer.
func (a *Adam) Step(params []*Param) {
	a.t++
	bc1 := 1 - math.Pow(a.Beta1, float64(a.t))
	bc2 := 1 - math.Pow(a.Beta2, float64(a.t))
	for _, p := range params {
		m, ok := a.m[p]
		if !ok {
			r, c := p.W.Dims()
			m = mat.New(r, c)
			a.m[p] = m
			a.v[p] = mat.New(r, c)
		}
		v := a.v[p]
		md, vd, gd, wd := m.Data(), v.Data(), p.Grad.Data(), p.W.Data()
		for i := range gd {
			g := gd[i]
			md[i] = a.Beta1*md[i] + (1-a.Beta1)*g
			vd[i] = a.Beta2*vd[i] + (1-a.Beta2)*g*g
			mHat := md[i] / bc1
			vHat := vd[i] / bc2
			wd[i] -= a.LR * mHat / (math.Sqrt(vHat) + a.Eps)
		}
		p.ZeroGrad()
	}
}

// RMSProp is the RMSProp optimizer, the common pre-Adam default for
// recurrent networks.
type RMSProp struct {
	LR, Decay, Eps float64

	cache map[*Param]*mat.Dense
}

// NewRMSProp returns an RMSProp optimizer with decay 0.9 and ε=1e-8.
func NewRMSProp(lr float64) *RMSProp {
	return &RMSProp{LR: lr, Decay: 0.9, Eps: 1e-8, cache: make(map[*Param]*mat.Dense)}
}

// Name implements Optimizer.
func (r *RMSProp) Name() string { return "rmsprop" }

// Step implements Optimizer.
func (r *RMSProp) Step(params []*Param) {
	for _, p := range params {
		c, ok := r.cache[p]
		if !ok {
			rows, cols := p.W.Dims()
			c = mat.New(rows, cols)
			r.cache[p] = c
		}
		cd, gd, wd := c.Data(), p.Grad.Data(), p.W.Data()
		for i := range gd {
			g := gd[i]
			cd[i] = r.Decay*cd[i] + (1-r.Decay)*g*g
			wd[i] -= r.LR * g / (math.Sqrt(cd[i]) + r.Eps)
		}
		p.ZeroGrad()
	}
}
