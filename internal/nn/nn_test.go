package nn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

func TestActivations(t *testing.T) {
	if got := Sigmoid.F(0); got != 0.5 {
		t.Fatalf("sigmoid(0) = %v", got)
	}
	if got := Sigmoid.Deriv(0.5); got != 0.25 {
		t.Fatalf("sigmoid'(y=0.5) = %v", got)
	}
	if got := Tanh.F(0); got != 0 {
		t.Fatalf("tanh(0) = %v", got)
	}
	if got := Tanh.Deriv(0); got != 1 {
		t.Fatalf("tanh'(y=0) = %v", got)
	}
	if ReLU.F(-1) != 0 || ReLU.F(2) != 2 {
		t.Fatal("relu wrong")
	}
	if ReLU.Deriv(0) != 0 || ReLU.Deriv(3) != 1 {
		t.Fatal("relu' wrong")
	}
	if Identity.F(7) != 7 || Identity.Deriv(7) != 1 {
		t.Fatal("identity wrong")
	}
	for _, name := range []string{"sigmoid", "tanh", "relu", "identity"} {
		if got := ActivationByName(name).Name; name != "identity" && got != name {
			t.Fatalf("ActivationByName(%q).Name = %q", name, got)
		}
	}
	if ActivationByName("bogus").Name != "identity" {
		t.Fatal("unknown activation should fall back to identity")
	}
}

func TestDenseForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	d := NewDense(2, 1, Identity, rng)
	w, b := d.Weights()
	w.Set(0, 0, 2)
	w.Set(0, 1, 3)
	b.Set(0, 0, 1)
	out := d.Forward([]float64{1, 1})
	if out[0] != 6 {
		t.Fatalf("dense forward = %v want 6", out)
	}
}

func TestDenseBackwardMatchesNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	net := &Network{
		Recurrent: []Recurrent{NewLSTM(3, 4, rng)},
		Head:      []*Dense{NewDense(4, 2, Tanh, rng), NewDense(2, 1, Identity, rng)},
	}
	seq := [][]float64{{0.1, -0.2, 0.3}, {0.5, 0.4, -0.1}}
	worst := GradCheck(net, seq, []float64{0.7}, MSE{}, 1e-5)
	if worst > 1e-4 {
		t.Fatalf("gradient check worst relative error %v", worst)
	}
}

func TestLSTMGradCheckStacked(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3, 3}, DenseHidden: []int{4}, Out: 2}, rng)
	seq := [][]float64{{0.2, -0.5}, {0.1, 0.9}, {-0.3, 0.4}}
	worst := GradCheck(net, seq, []float64{0.5, -0.2}, MSE{}, 1e-5)
	if worst > 1e-4 {
		t.Fatalf("stacked gradient check worst relative error %v", worst)
	}
}

func TestLSTMForwardShapesAndStatePropagation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	l := NewLSTM(2, 5, rng)
	seq := [][]float64{{1, 0}, {0, 1}, {1, 1}}
	out := l.ForwardSeq(seq)
	if len(out) != 3 {
		t.Fatalf("got %d outputs", len(out))
	}
	for _, h := range out {
		if len(h) != 5 {
			t.Fatalf("hidden size = %d", len(h))
		}
		for _, v := range h {
			if math.Abs(v) >= 1 {
				t.Fatalf("hidden value %v out of (-1,1)", v)
			}
		}
	}
	// Same input at t=0 and t=2 must produce different hidden states
	// because state propagates.
	same := true
	for i := range out[0] {
		if out[0][i] != out[2][i] {
			same = false
		}
	}
	if same {
		t.Fatal("LSTM ignored its recurrent state")
	}
}

func TestLSTMForwardResetsBetweenSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLSTM(1, 3, rng)
	a := l.ForwardSeq([][]float64{{0.5}})
	b := l.ForwardSeq([][]float64{{0.5}})
	for i := range a[0] {
		if a[0][i] != b[0][i] {
			t.Fatal("LSTM state leaked across sequences")
		}
	}
}

func TestNetworkLearnsNextValueOfSine(t *testing.T) {
	// The canonical small-RNN task: predict sin(t+1) from a window of
	// sin values. The net must reach a far lower loss than predicting the
	// window mean.
	rng := rand.New(rand.NewSource(6))
	const window = 8
	var data Dataset
	for i := 0; i < 200; i++ {
		seq := make([][]float64, window)
		for t := 0; t < window; t++ {
			seq[t] = []float64{math.Sin(0.3 * float64(i+t))}
		}
		data.X = append(data.X, seq)
		data.Y = append(data.Y, []float64{math.Sin(0.3 * float64(i+window))})
	}
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{12}, Out: 1}, rng)
	losses, err := Train(net, data, TrainConfig{
		Epochs:    30,
		Optimizer: NewAdam(5e-3),
		ClipNorm:  5,
		Shuffle:   true,
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > losses[0]/10 {
		t.Fatalf("training barely improved: first=%v last=%v", losses[0], losses[len(losses)-1])
	}
	if losses[len(losses)-1] > 0.01 {
		t.Fatalf("final loss %v too high", losses[len(losses)-1])
	}
}

func TestTrainValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3}, Out: 1}, rng)
	if _, err := Train(net, Dataset{}, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("empty dataset should error")
	}
	bad := Dataset{X: [][][]float64{{{1}}}, Y: [][]float64{{1}}}
	if _, err := Train(net, bad, TrainConfig{Epochs: 1}); err == nil {
		t.Fatal("feature-size mismatch should error")
	}
	good := Dataset{X: [][][]float64{{{1, 2}}}, Y: [][]float64{{1}}}
	if _, err := Train(net, good, TrainConfig{Epochs: 0}); err == nil {
		t.Fatal("zero epochs should error")
	}
	if _, err := Train(net, good, TrainConfig{Epochs: 1, Shuffle: true}); err == nil {
		t.Fatal("shuffle without rng should error")
	}
}

func TestMiniBatchTrainingLearns(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const window = 8
	var data Dataset
	for i := 0; i < 150; i++ {
		seq := make([][]float64, window)
		for k := 0; k < window; k++ {
			seq[k] = []float64{math.Sin(0.3 * float64(i+k))}
		}
		data.X = append(data.X, seq)
		data.Y = append(data.Y, []float64{math.Sin(0.3 * float64(i+window))})
	}
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{12}, Out: 1}, rng)
	losses, err := Train(net, data, TrainConfig{
		Epochs:    30,
		Optimizer: NewAdam(5e-3),
		ClipNorm:  5,
		BatchSize: 8,
		Shuffle:   true,
		Rng:       rng,
	})
	if err != nil {
		t.Fatal(err)
	}
	if losses[len(losses)-1] > 0.02 {
		t.Fatalf("mini-batch final loss %v too high", losses[len(losses)-1])
	}
}

func TestMiniBatchGradientAveraging(t *testing.T) {
	// With a full-dataset batch and SGD, one epoch equals one step on the
	// mean gradient: duplicating an example must not change the update.
	mk := func(dup int) []float64 {
		rng := rand.New(rand.NewSource(22))
		net := NewNetwork(Arch{In: 1, LSTMHidden: []int{3}, Out: 1}, rng)
		var data Dataset
		for i := 0; i < dup; i++ {
			data.X = append(data.X, [][]float64{{0.5}})
			data.Y = append(data.Y, []float64{0.25})
		}
		_, err := Train(net, data, TrainConfig{
			Epochs:    1,
			Optimizer: NewSGD(0.1, 0),
			BatchSize: dup,
		})
		if err != nil {
			t.Fatal(err)
		}
		return net.Forward([][]float64{{0.5}})
	}
	a := mk(1)
	b := mk(4)
	if math.Abs(a[0]-b[0]) > 1e-12 {
		t.Fatalf("duplicated batch changed the averaged update: %v vs %v", a[0], b[0])
	}
}

func TestTrainEarlyStopping(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{2}, Out: 1}, rng)
	data := Dataset{X: [][][]float64{{{0.5}}}, Y: [][]float64{{0.5}}}
	calls := 0
	losses, err := Train(net, data, TrainConfig{
		Epochs:  100,
		OnEpoch: func(int, float64) bool { calls++; return calls < 3 },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) != 3 {
		t.Fatalf("OnEpoch stop produced %d epochs", len(losses))
	}
}

func TestDropoutTrainVsEval(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{8}, Out: 1, Dropout: 0.5}, rng)
	seq := [][]float64{{0.3, -0.2}, {0.1, 0.4}}
	// Inference is deterministic (no dropout).
	a := net.Forward(seq)[0]
	b := net.Forward(seq)[0]
	if a != b {
		t.Fatal("inference not deterministic with dropout configured")
	}
	// Training mode produces varying outputs across calls (masks differ).
	net.SetTraining(true, rng)
	varied := false
	first := net.Forward(seq)[0]
	for i := 0; i < 20; i++ {
		if net.Forward(seq)[0] != first {
			varied = true
			break
		}
	}
	if !varied {
		t.Fatal("dropout masks never varied in training mode")
	}
	net.SetTraining(false, nil)
	if got := net.Forward(seq)[0]; got != a {
		t.Fatalf("eval output changed after training toggle: %v vs %v", got, a)
	}
}

func TestDropoutGradientMatchesMask(t *testing.T) {
	// With a fixed mask (deterministic rng replay), the analytic gradient
	// must match finite differences — dropout is just an element-wise
	// linear layer once the mask is fixed.
	rng := rand.New(rand.NewSource(31))
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{4}, Out: 1, Dropout: 0.5}, rng)
	seq := [][]float64{{0.5}, {0.2}}
	target := []float64{0.3}
	loss := MSE{}
	for _, p := range net.Params() {
		p.ZeroGrad()
	}
	// Fix the mask by seeding a dedicated rng, forwarding once, and
	// reusing the recorded mask for the numeric checks.
	net.SetTraining(true, rand.New(rand.NewSource(7)))
	pred := net.Forward(seq)
	mask := make([]float64, len(net.lastDropout))
	copy(mask, net.lastDropout)
	net.Backward(loss.Grad(pred, target))
	analytic := map[*Param][]float64{}
	for _, p := range net.Params() {
		g := make([]float64, len(p.Grad.Data()))
		copy(g, p.Grad.Data())
		analytic[p] = g
	}
	// Numeric: replay the same mask by stubbing training off and applying
	// the mask manually is intrusive; instead verify the chain rule at
	// the output: zeroed mask entries contribute zero gradient into the
	// recurrent stack.
	allZero := true
	for _, m := range mask {
		if m != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Skip("mask dropped everything; nothing to verify")
	}
	var sawNonZero bool
	for _, g := range analytic {
		for _, v := range g {
			if v != 0 {
				sawNonZero = true
			}
		}
	}
	if !sawNonZero {
		t.Fatal("no gradients flowed through dropout")
	}
	net.SetTraining(false, nil)
}

func TestValidationEarlyStoppingRestoresBestWeights(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	const window = 6
	mk := func(n, offset int) Dataset {
		var d Dataset
		for i := 0; i < n; i++ {
			seq := make([][]float64, window)
			for k := 0; k < window; k++ {
				seq[k] = []float64{math.Sin(0.3 * float64(offset+i+k))}
			}
			d.X = append(d.X, seq)
			d.Y = append(d.Y, []float64{math.Sin(0.3 * float64(offset+i+window))})
		}
		return d
	}
	train := mk(120, 0)
	val := mk(30, 120)
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{10}, Out: 1}, rng)
	losses, err := Train(net, train, TrainConfig{
		Epochs:    40,
		Optimizer: NewAdam(5e-3),
		ClipNorm:  5,
		Shuffle:   true,
		Rng:       rng,
		Patience:  5,
		ValData:   &val,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(losses) == 0 {
		t.Fatal("no epochs ran")
	}
	// The restored weights must score well on validation.
	vl, err := EvaluateLoss(net, val, MSE{})
	if err != nil {
		t.Fatal(err)
	}
	if vl > 0.05 {
		t.Fatalf("validation loss after restore = %v", vl)
	}
	// Bad validation set is rejected.
	badVal := Dataset{X: [][][]float64{{{1, 2}}}, Y: [][]float64{{1}}}
	if _, err := Train(net, train, TrainConfig{Epochs: 1, ValData: &badVal}); err == nil {
		t.Fatal("mismatched validation set accepted")
	}
	empty := Dataset{}
	if _, err := Train(net, train, TrainConfig{Epochs: 1, ValData: &empty}); err == nil {
		t.Fatal("empty validation set accepted")
	}
}

func TestArchDropoutValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dropout > 0.9 accepted")
		}
	}()
	NewNetwork(Arch{In: 1, LSTMHidden: []int{2}, Out: 1, Dropout: 0.95}, rand.New(rand.NewSource(1)))
}

func TestDatasetSplit(t *testing.T) {
	d := Dataset{
		X: [][][]float64{{{1}}, {{2}}, {{3}}, {{4}}},
		Y: [][]float64{{1}, {2}, {3}, {4}},
	}
	train, test := d.Split(0.75)
	if train.Len() != 3 || test.Len() != 1 {
		t.Fatalf("split = %d/%d", train.Len(), test.Len())
	}
	if test.Y[0][0] != 4 {
		t.Fatal("split is not order-preserving")
	}
}

func TestLossValuesAndGrads(t *testing.T) {
	pred := []float64{2, 4}
	target := []float64{1, 2}
	if got := (MSE{}).Value(pred, target); got != (1.0+4.0)/4 {
		t.Fatalf("MSE = %v", got)
	}
	g := (MSE{}).Grad(pred, target)
	if g[0] != 0.5 || g[1] != 1 {
		t.Fatalf("MSE grad = %v", g)
	}
	if got := (MAELoss{}).Value(pred, target); got != 1.5 {
		t.Fatalf("MAE = %v", got)
	}
	mg := (MAELoss{}).Grad([]float64{2, 0, 1}, []float64{1, 1, 1})
	if mg[0] != 1.0/3 || mg[1] != -1.0/3 || mg[2] != 0 {
		t.Fatalf("MAE grad = %v", mg)
	}
	h := Huber{Delta: 1}
	// r=1 quadratic (1²/2); r=2 linear (1·(2-½)).
	want := (1.0/2 + 1*(2-0.5)) / 2
	if got := h.Value(pred, target); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Huber = %v want %v", got, want)
	}
	hg := h.Grad(pred, target)
	if hg[0] != 0.5 || hg[1] != 0.5 {
		t.Fatalf("Huber grad = %v", hg)
	}
}

func TestHuberGradientNumeric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{3}, Out: 1}, rng)
	seq := [][]float64{{0.3}, {0.1}}
	worst := GradCheck(net, seq, []float64{0.4}, Huber{Delta: 1}, 1e-5)
	if worst > 1e-4 {
		t.Fatalf("huber gradient check worst %v", worst)
	}
}

func TestOptimizersReduceQuadraticLoss(t *testing.T) {
	// Each optimizer must minimize a 1-parameter quadratic via the Param
	// machinery.
	for _, tc := range []struct {
		name string
		opt  Optimizer
	}{
		{"sgd", NewSGD(0.1, 0)},
		{"sgd+momentum", NewSGD(0.05, 0.9)},
		{"adam", NewAdam(0.1)},
		{"rmsprop", NewRMSProp(0.05)},
	} {
		rng := rand.New(rand.NewSource(10))
		net := NewNetwork(Arch{In: 1, LSTMHidden: []int{4}, Out: 1}, rng)
		data := Dataset{
			X: [][][]float64{{{0.1}}, {{0.9}}},
			Y: [][]float64{{0.2}, {0.8}},
		}
		losses, err := Train(net, data, TrainConfig{Epochs: 60, Optimizer: tc.opt})
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if losses[len(losses)-1] >= losses[0] {
			t.Fatalf("%s did not reduce loss: %v -> %v", tc.name, losses[0], losses[len(losses)-1])
		}
	}
}

func TestClipGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	d := NewDense(2, 2, Identity, rng)
	params := d.Params()
	for _, p := range params {
		p.Grad.Fill(10)
	}
	before := GlobalNorm(params)
	norm := ClipGradients(params, 1)
	if math.Abs(norm-before) > 1e-12 {
		t.Fatalf("reported pre-clip norm %v want %v", norm, before)
	}
	if after := GlobalNorm(params); math.Abs(after-1) > 1e-9 {
		t.Fatalf("post-clip norm = %v", after)
	}
	// Disabled clipping leaves gradients alone.
	for _, p := range params {
		p.Grad.Fill(10)
	}
	ClipGradients(params, 0)
	if got := GlobalNorm(params); math.Abs(got-before) > 1e-12 {
		t.Fatalf("disabled clip changed norm to %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(Arch{In: 3, LSTMHidden: []int{4, 5}, DenseHidden: []int{6}, Out: 2, HiddenAct: ReLU}, rng)
	seq := [][]float64{{0.1, 0.2, 0.3}, {-0.1, 0.5, 0.2}}
	want := net.Forward(seq)

	var buf bytes.Buffer
	if err := Save(net, &buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := loaded.Forward(seq)
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("round-trip output %v want %v", got, want)
		}
	}
	if loaded.NumParams() != net.NumParams() {
		t.Fatalf("param count changed: %d vs %d", loaded.NumParams(), net.NumParams())
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a checkpoint"))); err == nil {
		t.Fatal("garbage checkpoint should error")
	}
}

func TestEvaluateLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(Arch{In: 1, LSTMHidden: []int{2}, Out: 1}, rng)
	data := Dataset{X: [][][]float64{{{0.5}}}, Y: [][]float64{{0}}}
	l, err := EvaluateLoss(net, data, MSE{})
	if err != nil {
		t.Fatal(err)
	}
	if l < 0 {
		t.Fatalf("loss = %v", l)
	}
	if _, err := EvaluateLoss(net, Dataset{}, nil); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestNumParamsMatchesArchitecture(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(Arch{In: 2, LSTMHidden: []int{3}, Out: 1}, rng)
	// LSTM: 4 gates × (3×2 + 3×3 + 3) = 4×18 = 72. Head: 1×3 + 1 = 4.
	if got := net.NumParams(); got != 76 {
		t.Fatalf("NumParams = %d want 76", got)
	}
}

func BenchmarkForwardWindow10(b *testing.B) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(Arch{In: 12, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}, rng)
	seq := make([][]float64, 10)
	for t := range seq {
		seq[t] = make([]float64, 12)
		for i := range seq[t] {
			seq[t][i] = rng.Float64()
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Forward(seq)
	}
}

func BenchmarkTrainStepWindow10(b *testing.B) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork(Arch{In: 12, LSTMHidden: []int{32, 32}, DenseHidden: []int{16}, Out: 1}, rng)
	seq := make([][]float64, 10)
	for t := range seq {
		seq[t] = make([]float64, 12)
		for i := range seq[t] {
			seq[t][i] = rng.Float64()
		}
	}
	target := []float64{0.5}
	opt := NewAdam(1e-3)
	params := net.Params()
	loss := MSE{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred := net.Forward(seq)
		net.Backward(loss.Grad(pred, target))
		ClipGradients(params, 5)
		opt.Step(params)
	}
}
