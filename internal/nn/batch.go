package nn

import (
	"fmt"
	"math"
	"sync"

	"predstream/internal/mat"
)

// BatchOptions tunes a BatchRunner.
type BatchOptions struct {
	// PreScale, when set, maps each raw input feature row into the
	// workspace (dst and src have equal length). The serving path uses it
	// to apply the model's feature standardization during the gather step
	// instead of materializing a scaled copy of every window.
	PreScale func(dst, src []float64)
}

// BatchRunner evaluates a Network forward-only over micro-batches of
// sequences: each timestep of each layer is one GEMM over the whole batch
// (mat.MulMatTo) instead of one GEMV per sequence. Workspaces are pooled
// with sync.Pool, so Forward is safe for concurrent use as long as nothing
// trains the underlying network concurrently.
type BatchRunner struct {
	net  *Network
	opts BatchOptions
	pool sync.Pool // *batchWS
}

// NewBatchRunner returns a batched forward evaluator over net. The runner
// reads the network's weights only; it never mutates layer state, so many
// goroutines may call Forward concurrently.
func NewBatchRunner(net *Network, opts BatchOptions) *BatchRunner {
	r := &BatchRunner{net: net, opts: opts}
	r.pool.New = func() any { return &batchWS{} }
	return r
}

// buf is a grow-only float64 arena reshaped into matrices on demand.
type buf struct{ data []float64 }

// mat returns a rows×cols view over the buffer, growing it if needed. The
// view's contents are unspecified until written.
//
//dsps:allocs grow-only arena: reallocates only when a larger shape first appears
func (b *buf) mat(rows, cols int) *mat.Dense {
	n := rows * cols
	if cap(b.data) < n {
		b.data = make([]float64, n)
	}
	return mat.Wrap(rows, cols, b.data[:n])
}

// zeroMat returns a zeroed rows×cols view.
func (b *buf) zeroMat(rows, cols int) *mat.Dense {
	m := b.mat(rows, cols)
	m.Zero()
	return m
}

// batchWS is one pooled forward workspace: two timestep banks ping-ponged
// between layers plus per-step state and gate scratch. Buffers grow to the
// largest (batch, seqLen, layer width) seen and are then reused.
type batchWS struct {
	bank [2][]buf // [bank][timestep] activation matrices
	gate []buf    // per-gate pre-activation scratch
	st   []buf    // cell state scratch (c / tanh(c) / candidate input)
	head [2]buf   // dense head ping-pong
}

//dsps:allocs per-timestep buffer list grows once per longest-sequence change
func (w *batchWS) bankBuf(bank, t int) *buf {
	for len(w.bank[bank]) <= t {
		w.bank[bank] = append(w.bank[bank], buf{})
	}
	return &w.bank[bank][t]
}

//dsps:allocs gate buffer list grows once per layer-count change
func (w *batchWS) gateBuf(i int) *buf {
	for len(w.gate) <= i {
		w.gate = append(w.gate, buf{})
	}
	return &w.gate[i]
}

//dsps:allocs state buffer list grows once per layer-count change
func (w *batchWS) stBuf(i int) *buf {
	for len(w.st) <= i {
		w.st = append(w.st, buf{})
	}
	return &w.st[i]
}

// Forward runs the network over a batch of sequences and writes the output
// vector for sequence i into dst[i]. Every sequence must have the same
// length and the network's input feature count per timestep; dst must hold
// len(seqs) slices of the network's output size. Results are bitwise
// identical to calling Network.Forward per sequence in inference mode.
func (r *BatchRunner) Forward(seqs [][][]float64, dst [][]float64) error {
	B := len(seqs)
	if B == 0 {
		return fmt.Errorf("nn: batch forward on empty batch")
	}
	if len(dst) != B {
		return fmt.Errorf("nn: batch forward got %d outputs for %d sequences", len(dst), B)
	}
	T := len(seqs[0])
	if T == 0 {
		return fmt.Errorf("nn: batch forward on empty sequence")
	}
	in := r.net.InSize()
	out := r.net.OutSize()
	for b, seq := range seqs {
		if len(seq) != T {
			return fmt.Errorf("nn: batch sequence %d has %d steps, want %d", b, len(seq), T)
		}
		for t, row := range seq {
			if len(row) != in {
				return fmt.Errorf("nn: batch sequence %d step %d has %d features, want %d", b, t, len(row), in)
			}
		}
		if len(dst[b]) != out {
			return fmt.Errorf("nn: batch output %d has %d elements, want %d", b, len(dst[b]), out)
		}
	}

	ws := r.pool.Get().(*batchWS)
	defer r.pool.Put(ws)

	// Gather (and optionally pre-scale) the input into bank 0.
	cur := 0
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, in)
		for b := 0; b < B; b++ {
			row := x.Data()[b*in : (b+1)*in]
			if r.opts.PreScale != nil {
				r.opts.PreScale(row, seqs[b][t])
			} else {
				copy(row, seqs[b][t])
			}
		}
	}

	for _, l := range r.net.Recurrent {
		next := 1 - cur
		switch cell := l.(type) {
		case *LSTM:
			lstmForwardBatch(cell, ws, cur, next, B, T)
		case *GRU:
			gruForwardBatch(cell, ws, cur, next, B, T)
		default:
			return fmt.Errorf("nn: batch forward: unsupported recurrent cell %T", l)
		}
		cur = next
	}

	// Dense head on the final timestep's hidden state.
	h := ws.bankBuf(cur, T-1).mat(B, r.net.Recurrent[len(r.net.Recurrent)-1].HiddenSize())
	ping := 0
	for _, d := range r.net.Head {
		y := ws.head[ping].mat(B, d.Out)
		d.w.W.MulMatTo(y, h)
		addBiasRows(y, d.b.W.Data())
		if d.Act.Name != "identity" {
			applyVec(y.Data(), d.Act.F)
		}
		h = y
		ping = 1 - ping
	}
	for b := 0; b < B; b++ {
		copy(dst[b], h.Data()[b*out:(b+1)*out])
	}
	return nil
}

// ForwardOne is Forward for a single sequence.
func (r *BatchRunner) ForwardOne(seq [][]float64, dst []float64) error {
	return r.Forward([][][]float64{seq}, [][]float64{dst})
}

// lstmForwardBatch runs one LSTM layer over the batched sequence in bank
// cur, leaving the per-timestep hidden states in bank next.
//
//dsps:hotpath
func lstmForwardBatch(l *LSTM, ws *batchWS, cur, next, B, T int) {
	hPrev := ws.stBuf(0).zeroMat(B, l.Hidden)
	cPrev := ws.stBuf(1).zeroMat(B, l.Hidden)
	c := ws.stBuf(2).mat(B, l.Hidden)
	tanhC := ws.stBuf(3).mat(B, l.Hidden)
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, l.In)
		var z [numGates]*mat.Dense
		for g := 0; g < numGates; g++ {
			z[g] = ws.gateBuf(g).mat(B, l.Hidden)
			l.wx[g].W.MulMatTo(z[g], x)
			l.wh[g].W.MulMatAdd(z[g], hPrev)
			addBiasRows(z[g], l.b[g].W.Data())
		}
		sigmoidVec(z[gateF].Data())
		sigmoidVec(z[gateI].Data())
		tanhVec(z[gateG].Data())
		sigmoidVec(z[gateO].Data())
		h := ws.bankBuf(next, t).mat(B, l.Hidden)
		fd, id, gd, od := z[gateF].Data(), z[gateI].Data(), z[gateG].Data(), z[gateO].Data()
		cd, cp, tc, hd := c.Data(), cPrev.Data(), tanhC.Data(), h.Data()
		for i := range cd {
			cd[i] = fd[i]*cp[i] + id[i]*gd[i]
		}
		tanhVecTo(tc, cd)
		for i := range hd {
			hd[i] = od[i] * tc[i]
		}
		hPrev = h
		c, cPrev = cPrev, c
	}
}

// gruForwardBatch runs one GRU layer over the batched sequence in bank
// cur, leaving the per-timestep hidden states in bank next.
//
//dsps:hotpath
func gruForwardBatch(g *GRU, ws *batchWS, cur, next, B, T int) {
	hPrev := ws.stBuf(0).zeroMat(B, g.Hidden)
	a := ws.stBuf(1).mat(B, g.Hidden)
	for t := 0; t < T; t++ {
		x := ws.bankBuf(cur, t).mat(B, g.In)
		z := ws.gateBuf(0).mat(B, g.Hidden)
		rr := ws.gateBuf(1).mat(B, g.Hidden)
		hHat := ws.gateBuf(2).mat(B, g.Hidden)
		g.wx[gruZ].W.MulMatTo(z, x)
		g.wh[gruZ].W.MulMatAdd(z, hPrev)
		addBiasRows(z, g.b[gruZ].W.Data())
		g.wx[gruR].W.MulMatTo(rr, x)
		g.wh[gruR].W.MulMatAdd(rr, hPrev)
		addBiasRows(rr, g.b[gruR].W.Data())
		sigmoidVec(z.Data())
		sigmoidVec(rr.Data())
		ad, rd, hp := a.Data(), rr.Data(), hPrev.Data()
		for i := range ad {
			ad[i] = rd[i] * hp[i]
		}
		g.wx[gruH].W.MulMatTo(hHat, x)
		g.wh[gruH].W.MulMatAdd(hHat, a)
		addBiasRows(hHat, g.b[gruH].W.Data())
		tanhVec(hHat.Data())
		h := ws.bankBuf(next, t).mat(B, g.Hidden)
		hd, zd, hh := h.Data(), z.Data(), hHat.Data()
		for i := range hd {
			hd[i] = (1-zd[i])*hp[i] + zd[i]*hh[i]
		}
		hPrev = h
	}
}

// addBiasRows adds the bias vector b (len = m.Cols) to every row of m.
//
//dsps:hotpath
func addBiasRows(m *mat.Dense, b []float64) {
	data := m.Data()
	cols := m.Cols()
	for r := 0; r < m.Rows(); r++ {
		row := data[r*cols : (r+1)*cols]
		for i := range row {
			row[i] += b[i]
		}
	}
}

// applyVec applies f to every element of xs in place.
func applyVec(xs []float64, f func(float64) float64) {
	for i, x := range xs {
		xs[i] = f(x)
	}
}

// tanhVecTo writes tanh(src) into dst element-wise.
func tanhVecTo(dst, src []float64) {
	for i, x := range src {
		dst[i] = math.Tanh(x)
	}
}
