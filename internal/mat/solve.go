package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution.
var ErrSingular = errors.New("mat: singular matrix")

// Solve returns x such that A x = b using Gaussian elimination with
// partial pivoting. A must be square with len(b) rows; A and b are not
// modified.
func Solve(a *Dense, b []float64) ([]float64, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: Solve needs a square matrix, got %dx%d", a.rows, a.cols)
	}
	if len(b) != n {
		return nil, fmt.Errorf("mat: Solve rhs has %d entries for %dx%d system", len(b), n, n)
	}
	// Augmented working copy.
	m := a.Copy()
	x := CloneVec(b)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot := col
		best := math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		if pivot != col {
			for c := col; c < n; c++ {
				tmp := m.At(col, c)
				m.Set(col, c, m.At(pivot, c))
				m.Set(pivot, c, tmp)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		pv := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / pv
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				m.Set(r, c, m.At(r, c)-f*m.At(col, c))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for r := n - 1; r >= 0; r-- {
		s := x[r]
		for c := r + 1; c < n; c++ {
			s -= m.At(r, c) * x[c]
		}
		x[r] = s / m.At(r, r)
	}
	return x, nil
}

// LeastSquares returns the coefficients minimizing ‖Xβ - y‖² by solving the
// normal equations (XᵀX + ridge·I) β = Xᵀy. A small ridge stabilizes the
// nearly collinear regressors ARIMA's Hannan–Rissanen stage produces; pass
// 0 for plain OLS.
func LeastSquares(x *Dense, y []float64, ridge float64) ([]float64, error) {
	if x.rows != len(y) {
		return nil, fmt.Errorf("mat: LeastSquares has %d rows and %d targets", x.rows, len(y))
	}
	if x.rows < x.cols {
		return nil, fmt.Errorf("mat: LeastSquares underdetermined: %d rows, %d cols", x.rows, x.cols)
	}
	xt := x.T()
	xtx := xt.MatMul(x)
	if ridge > 0 {
		for i := 0; i < xtx.rows; i++ {
			xtx.Set(i, i, xtx.At(i, i)+ridge)
		}
	}
	xty := xt.MulVec(y)
	return Solve(xtx, xty)
}
