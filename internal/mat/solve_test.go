package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveKnownSystem(t *testing.T) {
	a := FromSlice(2, 2, []float64{2, 1, 1, 3})
	x, err := Solve(a, []float64{5, 10})
	if err != nil {
		t.Fatal(err)
	}
	// 2x+y=5, x+3y=10 → x=1, y=3.
	if math.Abs(x[0]-1) > 1e-10 || math.Abs(x[1]-3) > 1e-10 {
		t.Fatalf("Solve = %v", x)
	}
}

func TestSolveNeedsPivoting(t *testing.T) {
	// Leading zero forces a row swap.
	a := FromSlice(2, 2, []float64{0, 1, 1, 0})
	x, err := Solve(a, []float64{2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 3 || x[1] != 2 {
		t.Fatalf("Solve with pivot = %v", x)
	}
}

func TestSolveSingular(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 2, 4})
	if _, err := Solve(a, []float64{1, 2}); err != ErrSingular {
		t.Fatalf("expected ErrSingular, got %v", err)
	}
}

func TestSolveDimensionErrors(t *testing.T) {
	if _, err := Solve(New(2, 3), []float64{1, 2}); err == nil {
		t.Fatal("non-square should error")
	}
	if _, err := Solve(New(2, 2), []float64{1}); err == nil {
		t.Fatal("rhs mismatch should error")
	}
}

func TestSolveDoesNotMutateInputs(t *testing.T) {
	a := FromSlice(2, 2, []float64{2, 1, 1, 3})
	b := []float64{5, 10}
	orig := a.Copy()
	if _, err := Solve(a, b); err != nil {
		t.Fatal(err)
	}
	if !a.EqualApprox(orig, 0) {
		t.Fatal("Solve mutated A")
	}
	if b[0] != 5 || b[1] != 10 {
		t.Fatal("Solve mutated b")
	}
}

func TestPropertySolveRoundTrip(t *testing.T) {
	// For well-conditioned random A, Solve(A, A·x) ≈ x.
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%6) + 1
		rng := rand.New(rand.NewSource(seed))
		a := New(n, n)
		for i := range a.Data() {
			a.Data()[i] = rng.NormFloat64()
		}
		// Diagonal dominance guarantees invertibility.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)+1)
		}
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		b := a.MulVec(x)
		got, err := Solve(a, b)
		if err != nil {
			return false
		}
		for i := range x {
			if math.Abs(got[i]-x[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLeastSquaresRecoversLine(t *testing.T) {
	// y = 3 + 2x with exact data.
	n := 10
	x := New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, float64(i))
		y[i] = 3 + 2*float64(i)
	}
	beta, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(beta[0]-3) > 1e-8 || math.Abs(beta[1]-2) > 1e-8 {
		t.Fatalf("beta = %v", beta)
	}
}

func TestLeastSquaresRidgeHandlesCollinear(t *testing.T) {
	// Identical columns are singular for OLS but solvable with ridge.
	n := 6
	x := New(n, 2)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x.Set(i, 0, float64(i))
		x.Set(i, 1, float64(i))
		y[i] = 4 * float64(i)
	}
	if _, err := LeastSquares(x, y, 0); err == nil {
		t.Fatal("collinear OLS should fail")
	}
	beta, err := LeastSquares(x, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge splits the weight between the twin columns: sum ≈ 4.
	if math.Abs(beta[0]+beta[1]-4) > 1e-3 {
		t.Fatalf("ridge beta = %v", beta)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(New(2, 3), []float64{1, 2}, 0); err == nil {
		t.Fatal("underdetermined should error")
	}
	if _, err := LeastSquares(New(2, 2), []float64{1}, 0); err == nil {
		t.Fatal("target mismatch should error")
	}
}

func TestGobRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	m := New(3, 4).RandUniform(rng, 2)
	enc, err := m.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out Dense
	if err := out.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	if !out.EqualApprox(m, 0) {
		t.Fatal("gob round-trip changed values")
	}
	if err := new(Dense).GobDecode([]byte("junk")); err == nil {
		t.Fatal("garbage gob should error")
	}
}
