package mat

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// denseWire is the stable on-wire representation of a Dense matrix.
type denseWire struct {
	Rows, Cols int
	Data       []float64
}

// GobEncode implements gob.GobEncoder so model checkpoints can serialize
// matrices despite their unexported fields.
func (m *Dense) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(denseWire{Rows: m.rows, Cols: m.cols, Data: m.data}); err != nil {
		return nil, fmt.Errorf("mat: gob encode: %w", err)
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (m *Dense) GobDecode(b []byte) error {
	var w denseWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return fmt.Errorf("mat: gob decode: %w", err)
	}
	if w.Rows <= 0 || w.Cols <= 0 || len(w.Data) != w.Rows*w.Cols {
		return fmt.Errorf("mat: gob decode: inconsistent payload %dx%d with %d elements", w.Rows, w.Cols, len(w.Data))
	}
	m.rows, m.cols, m.data = w.Rows, w.Cols, w.Data
	return nil
}
