package mat

import (
	"bytes"
	"encoding/gob"
)

// gobEncodeWire encodes a raw denseWire for forged-payload tests.
func gobEncodeWire(w denseWire) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
