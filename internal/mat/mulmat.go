package mat

import "fmt"

// MulMatTo computes dst = x · mᵀ in place, returning dst: row b of dst is
// m × (row b of x). It is the batched (GEMM) counterpart of MulVecTo for
// serving paths that evaluate one weight matrix against B input rows at
// once — the weight rows stream through cache once per micro-kernel block
// instead of once per input, which is what makes coalesced inference
// cheaper than B separate GEMVs.
//
// Shapes: m is Out×In, x is B×In, dst is B×Out. dst must not alias m or x.
//
//dsps:hotpath
func (m *Dense) MulMatTo(dst, x *Dense) *Dense {
	m.checkMulMat(dst, x, "MulMatTo")
	b := 0
	// 4-row micro-kernel: each weight row is loaded once and dotted
	// against four input rows, quartering the dominant memory traffic.
	for ; b+4 <= x.rows; b += 4 {
		x0 := x.data[(b+0)*x.cols : (b+1)*x.cols]
		x1 := x.data[(b+1)*x.cols : (b+2)*x.cols]
		x2 := x.data[(b+2)*x.cols : (b+3)*x.cols]
		x3 := x.data[(b+3)*x.cols : (b+4)*x.cols]
		d0 := dst.data[(b+0)*dst.cols : (b+1)*dst.cols]
		d1 := dst.data[(b+1)*dst.cols : (b+2)*dst.cols]
		d2 := dst.data[(b+2)*dst.cols : (b+3)*dst.cols]
		d3 := dst.data[(b+3)*dst.cols : (b+4)*dst.cols]
		for i := 0; i < m.rows; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			var s0, s1, s2, s3 float64
			for k, wv := range row {
				s0 += wv * x0[k]
				s1 += wv * x1[k]
				s2 += wv * x2[k]
				s3 += wv * x3[k]
			}
			d0[i], d1[i], d2[i], d3[i] = s0, s1, s2, s3
		}
	}
	for ; b < x.rows; b++ {
		m.MulVecTo(dst.data[b*dst.cols:(b+1)*dst.cols], x.data[b*x.cols:(b+1)*x.cols])
	}
	return dst
}

// MulMatAdd computes dst += x · mᵀ in place, returning dst. Shapes as in
// MulMatTo; dst must not alias m or x.
//
//dsps:hotpath
func (m *Dense) MulMatAdd(dst, x *Dense) *Dense {
	m.checkMulMat(dst, x, "MulMatAdd")
	b := 0
	for ; b+4 <= x.rows; b += 4 {
		x0 := x.data[(b+0)*x.cols : (b+1)*x.cols]
		x1 := x.data[(b+1)*x.cols : (b+2)*x.cols]
		x2 := x.data[(b+2)*x.cols : (b+3)*x.cols]
		x3 := x.data[(b+3)*x.cols : (b+4)*x.cols]
		d0 := dst.data[(b+0)*dst.cols : (b+1)*dst.cols]
		d1 := dst.data[(b+1)*dst.cols : (b+2)*dst.cols]
		d2 := dst.data[(b+2)*dst.cols : (b+3)*dst.cols]
		d3 := dst.data[(b+3)*dst.cols : (b+4)*dst.cols]
		for i := 0; i < m.rows; i++ {
			row := m.data[i*m.cols : (i+1)*m.cols]
			var s0, s1, s2, s3 float64
			for k, wv := range row {
				s0 += wv * x0[k]
				s1 += wv * x1[k]
				s2 += wv * x2[k]
				s3 += wv * x3[k]
			}
			d0[i] += s0
			d1[i] += s1
			d2[i] += s2
			d3[i] += s3
		}
	}
	for ; b < x.rows; b++ {
		m.MulVecAdd(dst.data[b*dst.cols:(b+1)*dst.cols], x.data[b*x.cols:(b+1)*x.cols])
	}
	return dst
}

func (m *Dense) checkMulMat(dst, x *Dense, op string) {
	if x.cols != m.cols || dst.cols != m.rows || dst.rows != x.rows {
		panic(fmt.Sprintf("mat: %s got x %dx%d, dst %dx%d for weights %dx%d",
			op, x.rows, x.cols, dst.rows, dst.cols, m.rows, m.cols))
	}
}
