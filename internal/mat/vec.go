package mat

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 so callers can interoperate
// with the rest of the codebase without wrapping.

// Dot returns the inner product of a and b, which must have equal length.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddVec returns a + b element-wise.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: AddVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v + b[i]
	}
	return out
}

// SubVec returns a - b element-wise.
func SubVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: SubVec length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v - b[i]
	}
	return out
}

// ScaleVec returns c*a.
func ScaleVec(c float64, a []float64) []float64 {
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = c * v
	}
	return out
}

// MulVecElem returns the element-wise product of a and b.
func MulVecElem(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: MulVecElem length mismatch %d vs %d", len(a), len(b)))
	}
	out := make([]float64, len(a))
	for i, v := range a {
		out[i] = v * b[i]
	}
	return out
}

// NormVec returns the Euclidean norm of a.
func NormVec(a []float64) float64 {
	var s float64
	for _, v := range a {
		s += v * v
	}
	return math.Sqrt(s)
}

// Outer returns the outer product a bᵀ as a len(a)×len(b) matrix.
func Outer(a, b []float64) *Dense {
	out := New(len(a), len(b))
	for i, av := range a {
		row := out.data[i*out.cols : (i+1)*out.cols]
		for j, bv := range b {
			row[j] = av * bv
		}
	}
	return out
}

// CloneVec returns a copy of a.
func CloneVec(a []float64) []float64 {
	out := make([]float64, len(a))
	copy(out, a)
	return out
}

// ArgMax returns the index of the largest element of a, or -1 for empty a.
func ArgMax(a []float64) int {
	if len(a) == 0 {
		return -1
	}
	best := 0
	for i, v := range a {
		if v > a[best] {
			best = i
		}
	}
	return best
}
