package mat

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

// mulMatRef is the obvious per-row reference: row b of dst = m × row b of x.
func mulMatRef(m, x *Dense) *Dense {
	dst := New(x.Rows(), m.Rows())
	for b := 0; b < x.Rows(); b++ {
		dst.SetRow(b, m.MulVec(x.Row(b)))
	}
	return dst
}

func TestMulMatToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dims := range []struct{ out, in, batch int }{
		{1, 1, 1}, {3, 5, 1}, {5, 3, 2}, {4, 4, 3}, {8, 16, 4},
		{16, 8, 5}, {32, 9, 7}, {7, 32, 8}, {13, 11, 17},
	} {
		m := New(dims.out, dims.in).RandUniform(rng, 1)
		x := New(dims.batch, dims.in).RandUniform(rng, 1)
		want := mulMatRef(m, x)
		got := m.MulMatTo(New(dims.batch, dims.out), x)
		if !got.EqualApprox(want, 1e-12) {
			t.Fatalf("MulMatTo mismatch for %dx%d × batch %d", dims.out, dims.in, dims.batch)
		}
		// MulMatAdd on a non-zero destination adds the same product.
		acc := New(dims.batch, dims.out)
		acc.Fill(0.5)
		m.MulMatAdd(acc, x)
		for b := 0; b < dims.batch; b++ {
			for i := 0; i < dims.out; i++ {
				if math.Abs(acc.At(b, i)-(want.At(b, i)+0.5)) > 1e-12 {
					t.Fatalf("MulMatAdd mismatch at (%d,%d)", b, i)
				}
			}
		}
	}
}

func TestMulMatToPanicsOnDimMismatch(t *testing.T) {
	m := New(3, 4)
	cases := []struct{ dst, x *Dense }{
		{New(2, 2), New(2, 4)}, // dst cols != m rows
		{New(3, 3), New(2, 4)}, // dst rows != x rows
		{New(2, 3), New(2, 5)}, // x cols != m cols
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("case %d: expected panic", i)
				}
			}()
			m.MulMatTo(c.dst, c.x)
		}()
	}
}

// BenchmarkMulMatTo measures the batched GEMM against the per-row GEMV
// loop it replaces, at the DRNN serving shape (gate matrix 32×32, batch
// B windows). `make bench-serve` records the ratio in BENCH_engine.json.
func BenchmarkMulMatTo(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, batch := range []int{1, 8, 32, 64} {
		m := New(32, 32).RandUniform(rng, 1)
		x := New(batch, 32).RandUniform(rng, 1)
		dst := New(batch, 32)
		b.Run(fmt.Sprintf("B%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m.MulMatTo(dst, x)
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/row")
		})
	}
}

// BenchmarkMulVecToLoop is the baseline BenchmarkMulMatTo beats: the same
// work issued as B independent GEMVs.
func BenchmarkMulVecToLoop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, batch := range []int{1, 8, 32, 64} {
		m := New(32, 32).RandUniform(rng, 1)
		x := New(batch, 32).RandUniform(rng, 1)
		dst := New(batch, 32)
		b.Run(fmt.Sprintf("B%d", batch), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for r := 0; r < batch; r++ {
					m.MulVecTo(dst.Data()[r*32:(r+1)*32], x.Data()[r*32:(r+1)*32])
				}
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batch), "ns/row")
		})
	}
}
