package mat

import (
	"math/rand"
	"testing"
)

func TestMulVecToMatchesMulVec(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := New(5, 3).RandUniform(rng, 1)
	v := []float64{0.5, -1.25, 2}
	want := m.MulVec(v)
	dst := make([]float64, 5)
	got := m.MulVecTo(dst, v)
	if &got[0] != &dst[0] {
		t.Fatal("MulVecTo did not return dst")
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("MulVecTo[%d] = %v want %v", i, got[i], want[i])
		}
	}
	// MulVecTo overwrites stale contents.
	for i := range dst {
		dst[i] = 99
	}
	m.MulVecTo(dst, v)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("MulVecTo did not overwrite dst[%d]", i)
		}
	}
}

func TestMulVecAddAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := New(4, 2).RandUniform(rng, 1)
	v := []float64{1.5, -0.5}
	base := []float64{1, 2, 3, 4}
	dst := append([]float64(nil), base...)
	m.MulVecAdd(dst, v)
	prod := m.MulVec(v)
	for i := range dst {
		if dst[i] != base[i]+prod[i] {
			t.Fatalf("MulVecAdd[%d] = %v want %v", i, dst[i], base[i]+prod[i])
		}
	}
}

func TestMulVecToDimensionChecks(t *testing.T) {
	m := New(3, 2)
	for _, fn := range []func(){
		func() { m.MulVecTo(make([]float64, 3), make([]float64, 3)) },
		func() { m.MulVecTo(make([]float64, 2), make([]float64, 2)) },
		func() { m.MulVecAdd(make([]float64, 3), make([]float64, 1)) },
		func() { m.MulVecAdd(make([]float64, 4), make([]float64, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("dimension mismatch did not panic")
				}
			}()
			fn()
		}()
	}
}
