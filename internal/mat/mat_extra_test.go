package mat

import (
	"math"
	"strings"
	"testing"
)

func TestAccessorsAndInPlaceOps(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("Rows/Cols = %d/%d", m.Rows(), m.Cols())
	}
	n := FromSlice(2, 3, []float64{1, 1, 1, 1, 1, 1})
	if got := m.AddInPlace(n); got != m {
		t.Fatal("AddInPlace did not return receiver")
	}
	if m.At(1, 2) != 7 {
		t.Fatalf("AddInPlace result = %v", m)
	}
	m.ScaleInPlace(2)
	if m.At(0, 0) != 4 {
		t.Fatalf("ScaleInPlace result = %v", m)
	}
	m.ApplyInPlace(func(v float64) float64 { return -v })
	if m.At(0, 0) != -4 {
		t.Fatalf("ApplyInPlace result = %v", m)
	}
	m.Fill(3)
	if m.Sum() != 18 {
		t.Fatalf("Fill sum = %v", m.Sum())
	}
	m.Zero()
	if m.Sum() != 0 {
		t.Fatalf("Zero sum = %v", m.Sum())
	}
}

func TestMulElem(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, 2, 3})
	b := FromSlice(1, 3, []float64{4, 5, 6})
	got := a.MulElem(b)
	want := FromSlice(1, 3, []float64{4, 10, 18})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("MulElem = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MulElem dimension mismatch did not panic")
		}
	}()
	a.MulElem(New(2, 2))
}

func TestEqualApproxDimensionMismatch(t *testing.T) {
	if New(2, 2).EqualApprox(New(2, 3), 1) {
		t.Fatal("different dims reported equal")
	}
	a := FromSlice(1, 1, []float64{1})
	b := FromSlice(1, 1, []float64{1.5})
	if a.EqualApprox(b, 0.1) {
		t.Fatal("out-of-tolerance reported equal")
	}
	if !a.EqualApprox(b, 1) {
		t.Fatal("in-tolerance reported unequal")
	}
}

func TestStringRendering(t *testing.T) {
	s := FromSlice(2, 2, []float64{1, 2, 3, 4}).String()
	if !strings.Contains(s, "2x2") || !strings.Contains(s, "1 2; 3 4") {
		t.Fatalf("String = %q", s)
	}
}

func TestPanicsOnMismatchedVectorOps(t *testing.T) {
	for name, fn := range map[string]func(){
		"Dot":        func() { Dot([]float64{1}, []float64{1, 2}) },
		"AddVec":     func() { AddVec([]float64{1}, []float64{1, 2}) },
		"SubVec":     func() { SubVec([]float64{1}, []float64{1, 2}) },
		"MulVecElem": func() { MulVecElem([]float64{1}, []float64{1, 2}) },
		"MulVec":     func() { New(2, 2).MulVec([]float64{1}) },
		"SetRow":     func() { New(2, 2).SetRow(0, []float64{1}) },
		"RowRange":   func() { New(2, 2).Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestGobDecodeRejectsInconsistentPayload(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, 2, 3, 4})
	enc, err := m.GobEncode()
	if err != nil {
		t.Fatal(err)
	}
	var out Dense
	if err := out.GobDecode(enc); err != nil {
		t.Fatal(err)
	}
	// Forged payload with mismatched dims.
	bad := denseWire{Rows: 3, Cols: 3, Data: []float64{1}}
	forged := encodeWire(t, bad)
	if err := new(Dense).GobDecode(forged); err == nil {
		t.Fatal("inconsistent payload accepted")
	}
}

func encodeWire(t *testing.T, w denseWire) []byte {
	t.Helper()
	var m Dense
	m.rows, m.cols, m.data = 1, 1, []float64{0}
	// Reuse GobEncode's wire format by hand-encoding via the same type.
	b, err := gobEncodeWire(w)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSolveZeroPivotAfterElimination(t *testing.T) {
	// A matrix that becomes singular during elimination (not at first
	// pivot).
	a := FromSlice(3, 3, []float64{
		1, 1, 1,
		1, 1, 2,
		2, 2, 3,
	})
	if _, err := Solve(a, []float64{1, 2, 3}); err != ErrSingular {
		t.Fatalf("want ErrSingular, got %v", err)
	}
}

func TestNormVecAndArgMaxEdge(t *testing.T) {
	if NormVec(nil) != 0 {
		t.Fatal("NormVec(nil) != 0")
	}
	if got := ArgMax([]float64{-3, -1, -2}); got != 1 {
		t.Fatalf("ArgMax negatives = %d", got)
	}
	if math.IsNaN(NormVec([]float64{0})) {
		t.Fatal("NormVec NaN")
	}
}
