// Package mat provides dense float64 vector and matrix primitives used by
// the neural-network, ARIMA and SVR packages. It is deliberately small:
// row-major dense storage, explicit dimension checks, and a parallel
// matrix-multiply path for the sizes the DRNN training loop produces.
package mat

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Dense is a row-major dense matrix of float64.
type Dense struct {
	rows, cols int
	data       []float64
}

// New returns a zeroed rows×cols matrix. It panics if either dimension is
// not positive, because a zero-dimension matrix is always a caller bug in
// this codebase.
func New(rows, cols int) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromSlice returns a rows×cols matrix backed by a copy of data, which must
// have exactly rows*cols elements in row-major order.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: FromSlice got %d elements for %dx%d", len(data), rows, cols))
	}
	m := New(rows, cols)
	copy(m.data, data)
	return m
}

// Wrap returns a rows×cols matrix backed directly by data (no copy), which
// must have exactly rows*cols elements in row-major order. Mutating the
// matrix mutates data and vice versa; workspace arenas use it to reshape a
// pooled buffer without allocating.
func Wrap(rows, cols int, data []float64) *Dense {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("mat: invalid dimensions %dx%d", rows, cols))
	}
	if len(data) != rows*cols {
		panic(fmt.Sprintf("mat: Wrap got %d elements for %dx%d", len(data), rows, cols))
	}
	//dspslint:ignore allocfree Wrap inlines into workspace callers and the header stays on the stack (forward-path benchmarks pin 0 allocs/op)
	return &Dense{rows: rows, cols: cols, data: data}
}

// Dims returns the dimensions of m.
func (m *Dense) Dims() (rows, cols int) { return m.rows, m.cols }

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns v to the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range for %dx%d", i, j, m.rows, m.cols))
	}
}

// Data returns the backing slice of m in row-major order. Mutating it
// mutates the matrix; callers that need isolation should Copy first.
func (m *Dense) Data() []float64 { return m.data }

// Row returns row i as a freshly allocated slice.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range for %dx%d", i, m.rows, m.cols))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow got %d elements for %d columns", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// Copy returns a deep copy of m.
func (m *Dense) Copy() *Dense {
	out := New(m.rows, m.cols)
	copy(out.data, m.data)
	return out
}

// Zero sets every element of m to 0 in place.
func (m *Dense) Zero() {
	for i := range m.data {
		m.data[i] = 0
	}
}

// Fill sets every element of m to v in place.
func (m *Dense) Fill(v float64) {
	for i := range m.data {
		m.data[i] = v
	}
}

// Add returns m + n. Dimensions must match.
func (m *Dense) Add(n *Dense) *Dense {
	m.sameDims(n, "Add")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v + n.data[i]
	}
	return out
}

// AddInPlace adds n into m and returns m.
func (m *Dense) AddInPlace(n *Dense) *Dense {
	m.sameDims(n, "AddInPlace")
	for i, v := range n.data {
		m.data[i] += v
	}
	return m
}

// Sub returns m - n. Dimensions must match.
func (m *Dense) Sub(n *Dense) *Dense {
	m.sameDims(n, "Sub")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v - n.data[i]
	}
	return out
}

// Scale returns c*m.
func (m *Dense) Scale(c float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = c * v
	}
	return out
}

// ScaleInPlace multiplies every element of m by c and returns m.
func (m *Dense) ScaleInPlace(c float64) *Dense {
	for i := range m.data {
		m.data[i] *= c
	}
	return m
}

// MulElem returns the Hadamard (element-wise) product m ∘ n.
func (m *Dense) MulElem(n *Dense) *Dense {
	m.sameDims(n, "MulElem")
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = v * n.data[i]
	}
	return out
}

// Apply returns a new matrix with f applied to every element.
func (m *Dense) Apply(f func(float64) float64) *Dense {
	out := New(m.rows, m.cols)
	for i, v := range m.data {
		out.data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of m and returns m.
func (m *Dense) ApplyInPlace(f func(float64) float64) *Dense {
	for i, v := range m.data {
		m.data[i] = f(v)
	}
	return m
}

// T returns the transpose of m.
func (m *Dense) T() *Dense {
	out := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		base := i * m.cols
		for j := 0; j < m.cols; j++ {
			out.data[j*m.rows+i] = m.data[base+j]
		}
	}
	return out
}

func (m *Dense) sameDims(n *Dense, op string) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, m.rows, m.cols, n.rows, n.cols))
	}
}

// parallelThreshold is the number of multiply-adds above which MatMul
// splits rows across goroutines. Chosen so small DRNN-sized multiplies stay
// single-threaded (goroutine overhead dominates below ~64k flops).
const parallelThreshold = 1 << 16

// MatMul returns m × n. m.Cols must equal n.Rows.
func (m *Dense) MatMul(n *Dense) *Dense {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mat: MatMul dimension mismatch %dx%d × %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	out := New(m.rows, n.cols)
	work := m.rows * m.cols * n.cols
	if work < parallelThreshold {
		matMulRange(out, m, n, 0, m.rows)
		return out
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > m.rows {
		workers = m.rows
	}
	chunk := (m.rows + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < m.rows; lo += chunk {
		hi := lo + chunk
		if hi > m.rows {
			hi = m.rows
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRange(out, m, n, lo, hi)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// matMulRange computes rows [lo,hi) of out = m × n using an ikj loop order
// so the inner loop streams both n and out rows sequentially.
func matMulRange(out, m, n *Dense, lo, hi int) {
	for i := lo; i < hi; i++ {
		outRow := out.data[i*out.cols : (i+1)*out.cols]
		mRow := m.data[i*m.cols : (i+1)*m.cols]
		for k, mv := range mRow {
			if mv == 0 {
				continue
			}
			nRow := n.data[k*n.cols : (k+1)*n.cols]
			for j, nv := range nRow {
				outRow[j] += mv * nv
			}
		}
	}
}

// MulVec returns m × v as a new vector. len(v) must equal m.Cols.
func (m *Dense) MulVec(v []float64) []float64 {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: MulVec got vector of %d for %dx%d", len(v), m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		out[i] = s
	}
	return out
}

// MulVecTo computes dst = m × v in place, returning dst. It is the
// allocation-free variant of MulVec for hot paths that own a reusable
// output buffer. len(v) must equal m.Cols and len(dst) must equal m.Rows.
func (m *Dense) MulVecTo(dst, v []float64) []float64 {
	if len(v) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecTo got dst %d, v %d for %dx%d", len(dst), len(v), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] = s
	}
	return dst
}

// MulVecAdd computes dst += m × v in place, returning dst. Dimensions as
// in MulVecTo.
func (m *Dense) MulVecAdd(dst, v []float64) []float64 {
	if len(v) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecAdd got dst %d, v %d for %dx%d", len(dst), len(v), m.rows, m.cols))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, rv := range row {
			s += rv * v[j]
		}
		dst[i] += s
	}
	return dst
}

// Norm returns the Frobenius norm of m.
func (m *Dense) Norm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// Sum returns the sum of all elements of m.
func (m *Dense) Sum() float64 {
	var s float64
	for _, v := range m.data {
		s += v
	}
	return s
}

// MaxAbs returns the largest absolute element value of m.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// EqualApprox reports whether m and n have identical dimensions and all
// elements within tol of each other.
func (m *Dense) EqualApprox(n *Dense, tol float64) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-n.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders m for debugging.
func (m *Dense) String() string {
	s := fmt.Sprintf("Dense %dx%d [", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// RandXavier fills m with Glorot/Xavier-uniform values appropriate for tanh
// and sigmoid layers: U(-l, l) with l = sqrt(6/(fanIn+fanOut)).
func (m *Dense) RandXavier(rng *rand.Rand) *Dense {
	limit := math.Sqrt(6.0 / float64(m.rows+m.cols))
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * limit
	}
	return m
}

// RandHe fills m with He-normal values appropriate for ReLU layers:
// N(0, sqrt(2/fanIn)) where fanIn is the column count.
func (m *Dense) RandHe(rng *rand.Rand) *Dense {
	std := math.Sqrt(2.0 / float64(m.cols))
	for i := range m.data {
		m.data[i] = rng.NormFloat64() * std
	}
	return m
}

// RandUniform fills m with U(-scale, scale) values.
func (m *Dense) RandUniform(rng *rand.Rand, scale float64) *Dense {
	for i := range m.data {
		m.data[i] = (rng.Float64()*2 - 1) * scale
	}
	return m
}
