package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewDims(t *testing.T) {
	m := New(3, 4)
	if r, c := m.Dims(); r != 3 || c != 4 {
		t.Fatalf("Dims = %d,%d want 3,4", r, c)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("new matrix not zeroed at (%d,%d)", i, j)
			}
		}
	}
}

func TestNewPanicsOnBadDims(t *testing.T) {
	for _, dims := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {2, -3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", dims[0], dims[1])
				}
			}()
			New(dims[0], dims[1])
		}()
	}
}

func TestFromSliceRoundTrip(t *testing.T) {
	data := []float64{1, 2, 3, 4, 5, 6}
	m := FromSlice(2, 3, data)
	if m.At(0, 0) != 1 || m.At(0, 2) != 3 || m.At(1, 0) != 4 || m.At(1, 2) != 6 {
		t.Fatalf("FromSlice layout wrong: %v", m)
	}
	// FromSlice must copy: mutating the source must not affect the matrix.
	data[0] = 99
	if m.At(0, 0) != 1 {
		t.Fatal("FromSlice aliases its input")
	}
}

func TestFromSlicePanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestSetAt(t *testing.T) {
	m := New(2, 2)
	m.Set(1, 0, 7.5)
	if got := m.At(1, 0); got != 7.5 {
		t.Fatalf("At(1,0) = %v want 7.5", got)
	}
}

func TestAtPanicsOutOfRange(t *testing.T) {
	m := New(2, 2)
	for _, idx := range [][2]int{{2, 0}, {0, 2}, {-1, 0}, {0, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("At(%d,%d) did not panic", idx[0], idx[1])
				}
			}()
			m.At(idx[0], idx[1])
		}()
	}
}

func TestRowSetRow(t *testing.T) {
	m := New(2, 3)
	m.SetRow(1, []float64{4, 5, 6})
	row := m.Row(1)
	if row[0] != 4 || row[1] != 5 || row[2] != 6 {
		t.Fatalf("Row(1) = %v", row)
	}
	// Row must return a copy.
	row[0] = 99
	if m.At(1, 0) != 4 {
		t.Fatal("Row aliases matrix storage")
	}
}

func TestAddSub(t *testing.T) {
	a := FromSlice(2, 2, []float64{1, 2, 3, 4})
	b := FromSlice(2, 2, []float64{10, 20, 30, 40})
	sum := a.Add(b)
	want := FromSlice(2, 2, []float64{11, 22, 33, 44})
	if !sum.EqualApprox(want, 0) {
		t.Fatalf("Add = %v", sum)
	}
	diff := sum.Sub(b)
	if !diff.EqualApprox(a, 0) {
		t.Fatalf("Sub = %v", diff)
	}
}

func TestMatMulKnown(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	b := FromSlice(3, 2, []float64{7, 8, 9, 10, 11, 12})
	got := a.MatMul(b)
	want := FromSlice(2, 2, []float64{58, 64, 139, 154})
	if !got.EqualApprox(want, 1e-12) {
		t.Fatalf("MatMul = %v want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(5, 5).RandUniform(rng, 1)
	id := New(5, 5)
	for i := 0; i < 5; i++ {
		id.Set(i, i, 1)
	}
	if !a.MatMul(id).EqualApprox(a, 1e-12) {
		t.Fatal("A×I != A")
	}
	if !id.MatMul(a).EqualApprox(a, 1e-12) {
		t.Fatal("I×A != A")
	}
}

func TestMatMulParallelMatchesSerial(t *testing.T) {
	// Big enough to take the parallel path; compare with a naive reference.
	rng := rand.New(rand.NewSource(2))
	const n = 64
	a := New(n, n).RandUniform(rng, 1)
	b := New(n, n).RandUniform(rng, 1)
	got := a.MatMul(b)
	ref := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			ref.Set(i, j, s)
		}
	}
	if !got.EqualApprox(ref, 1e-9) {
		t.Fatal("parallel MatMul diverges from naive reference")
	}
}

func TestMatMulPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MatMul with mismatched dims did not panic")
		}
	}()
	New(2, 3).MatMul(New(2, 3))
}

func TestTranspose(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	at := a.T()
	if r, c := at.Dims(); r != 3 || c != 2 {
		t.Fatalf("T dims = %d,%d", r, c)
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if a.At(i, j) != at.At(j, i) {
				t.Fatalf("T mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMulVec(t *testing.T) {
	a := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Fatalf("MulVec = %v", got)
	}
}

func TestApplyAndScale(t *testing.T) {
	a := FromSlice(1, 3, []float64{1, -2, 3})
	abs := a.Apply(math.Abs)
	if abs.At(0, 1) != 2 {
		t.Fatalf("Apply abs = %v", abs)
	}
	if a.At(0, 1) != -2 {
		t.Fatal("Apply mutated receiver")
	}
	s := a.Scale(2)
	if s.At(0, 2) != 6 {
		t.Fatalf("Scale = %v", s)
	}
}

func TestCopyIndependence(t *testing.T) {
	a := FromSlice(1, 2, []float64{1, 2})
	b := a.Copy()
	b.Set(0, 0, 100)
	if a.At(0, 0) != 1 {
		t.Fatal("Copy shares storage")
	}
}

func TestNormSumMaxAbs(t *testing.T) {
	a := FromSlice(1, 4, []float64{3, -4, 0, 0})
	if got := a.Norm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Norm = %v want 5", got)
	}
	if got := a.Sum(); got != -1 {
		t.Fatalf("Sum = %v want -1", got)
	}
	if got := a.MaxAbs(); got != 4 {
		t.Fatalf("MaxAbs = %v want 4", got)
	}
}

func TestOuter(t *testing.T) {
	got := Outer([]float64{1, 2}, []float64{3, 4, 5})
	want := FromSlice(2, 3, []float64{3, 4, 5, 6, 8, 10})
	if !got.EqualApprox(want, 0) {
		t.Fatalf("Outer = %v", got)
	}
}

func TestDotAndVecOps(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5, 6}
	if got := Dot(a, b); got != 32 {
		t.Fatalf("Dot = %v", got)
	}
	if got := AddVec(a, b); got[2] != 9 {
		t.Fatalf("AddVec = %v", got)
	}
	if got := SubVec(b, a); got[0] != 3 {
		t.Fatalf("SubVec = %v", got)
	}
	if got := ScaleVec(2, a); got[1] != 4 {
		t.Fatalf("ScaleVec = %v", got)
	}
	if got := MulVecElem(a, b); got[2] != 18 {
		t.Fatalf("MulVecElem = %v", got)
	}
	if got := NormVec([]float64{3, 4}); math.Abs(got-5) > 1e-12 {
		t.Fatalf("NormVec = %v", got)
	}
}

func TestArgMax(t *testing.T) {
	if got := ArgMax([]float64{1, 5, 3}); got != 1 {
		t.Fatalf("ArgMax = %d", got)
	}
	if got := ArgMax(nil); got != -1 {
		t.Fatalf("ArgMax(nil) = %d", got)
	}
}

func TestCloneVec(t *testing.T) {
	a := []float64{1, 2}
	b := CloneVec(a)
	b[0] = 9
	if a[0] != 1 {
		t.Fatal("CloneVec aliases input")
	}
}

func TestRandInitializersBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := New(20, 30).RandXavier(rng)
	limit := math.Sqrt(6.0 / 50.0)
	for _, v := range m.Data() {
		if math.Abs(v) > limit {
			t.Fatalf("Xavier value %v exceeds limit %v", v, limit)
		}
	}
	u := New(4, 4).RandUniform(rng, 0.5)
	for _, v := range u.Data() {
		if math.Abs(v) > 0.5 {
			t.Fatalf("Uniform value %v exceeds 0.5", v)
		}
	}
	// He init is unbounded; only check it produces variation.
	h := New(10, 10).RandHe(rng)
	if h.Norm() == 0 {
		t.Fatal("He init produced all zeros")
	}
}

// randMatrix builds a bounded random matrix for property tests.
func randMatrix(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}

func TestPropertyAddCommutative(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		rows, cols := int(r%8)+1, int(c%8)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, rows, cols)
		b := randMatrix(rng, rows, cols)
		return a.Add(b).EqualApprox(b.Add(a), 1e-12)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyTransposeInvolution(t *testing.T) {
	f := func(seed int64, r, c uint8) bool {
		rows, cols := int(r%8)+1, int(c%8)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, rows, cols)
		return a.T().T().EqualApprox(a, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatMulTransposeIdentity(t *testing.T) {
	// (AB)ᵀ = BᵀAᵀ
	f := func(seed int64, r, k, c uint8) bool {
		m, n, p := int(r%6)+1, int(k%6)+1, int(c%6)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, m, n)
		b := randMatrix(rng, n, p)
		return a.MatMul(b).T().EqualApprox(b.T().MatMul(a.T()), 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatMulDistributesOverAdd(t *testing.T) {
	// A(B+C) = AB + AC
	f := func(seed int64, r, k, c uint8) bool {
		m, n, p := int(r%6)+1, int(k%6)+1, int(c%6)+1
		rng := rand.New(rand.NewSource(seed))
		a := randMatrix(rng, m, n)
		b := randMatrix(rng, n, p)
		cm := randMatrix(rng, n, p)
		left := a.MatMul(b.Add(cm))
		right := a.MatMul(b).Add(a.MatMul(cm))
		return left.EqualApprox(right, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDotMulVecConsistent(t *testing.T) {
	// Row i of (M v) equals Dot(M.Row(i), v).
	f := func(seed int64, r, c uint8) bool {
		rows, cols := int(r%8)+1, int(c%8)+1
		rng := rand.New(rand.NewSource(seed))
		m := randMatrix(rng, rows, cols)
		v := make([]float64, cols)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		mv := m.MulVec(v)
		for i := 0; i < rows; i++ {
			if math.Abs(mv[i]-Dot(m.Row(i), v)) > 1e-10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkMatMul64(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := New(64, 64).RandUniform(rng, 1)
	y := New(64, 64).RandUniform(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}

func BenchmarkMatMul256Parallel(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	x := New(256, 256).RandUniform(rng, 1)
	y := New(256, 256).RandUniform(rng, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.MatMul(y)
	}
}
