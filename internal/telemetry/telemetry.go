// Package telemetry turns raw engine counters into the multilevel runtime
// statistics the paper's DRNN consumes: per measurement window it derives
// tuple-level rates, task-level processing times, worker-level queueing and
// machine-level co-location interference features for every worker, and
// assembles them into timeseries.Series for training and online prediction.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"predstream/internal/dsps"
	"predstream/internal/timeseries"
)

// WindowStats is one worker's multilevel statistics over one measurement
// window (the delta between two cluster snapshots).
type WindowStats struct {
	WorkerID string
	NodeID   string
	Start    time.Time
	End      time.Time

	// Tuple level.
	ExecRate float64 // tuples executed per second by the worker's tasks
	EmitRate float64 // tuples emitted per second

	// Task level.
	AvgExecMs  float64 // mean per-tuple processing time in ms
	AvgQueueMs float64 // mean queueing delay in ms

	// Worker level.
	QueueLen    float64 // input queue backlog at window end
	Misbehaving bool    // whether a fault was injected (ground truth, not a feature)

	// Machine level (interference of co-located workers).
	CoWorkers   float64 // co-located workers on the same node
	CoExecRate  float64 // their aggregate execute rate
	CoAvgExecMs float64 // their mean processing time
	NodeBusy    float64 // instantaneous executors mid-execute on the node
}

// Sampler converts a stream of cluster snapshots into per-worker
// WindowStats series. Call Sample at a fixed period; the first call only
// establishes the baseline. An optional component filter restricts which
// tasks contribute to a worker's statistics — the controller filters to
// the stage it steers so co-hosted cheap sinks don't dilute the signal.
type Sampler struct {
	mu         sync.Mutex
	prev       *dsps.Snapshot
	series     map[string][]WindowStats
	maxLen     int
	components map[string]bool // nil = all components
}

// NewSampler returns a sampler retaining at most maxLen windows per worker
// (0 means unbounded), with all components contributing.
func NewSampler(maxLen int) *Sampler {
	return &Sampler{series: make(map[string][]WindowStats), maxLen: maxLen}
}

// NewSamplerFiltered returns a sampler whose worker statistics aggregate
// only tasks of the named components. Workers hosting none of them record
// no windows.
func NewSamplerFiltered(maxLen int, components ...string) *Sampler {
	s := NewSampler(maxLen)
	if len(components) > 0 {
		s.components = make(map[string]bool, len(components))
		for _, c := range components {
			s.components[c] = true
		}
	}
	return s
}

// Sample ingests a snapshot, appending one window per worker when a
// previous snapshot exists.
func (s *Sampler) Sample(snap *dsps.Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.prev
	s.prev = snap
	if prev == nil {
		return
	}
	dt := snap.At.Sub(prev.At).Seconds()
	if dt <= 0 {
		return
	}
	type workerDelta struct {
		execRate, emitRate, avgExecMs, avgQueueMs, queueLen float64
	}
	// Aggregate task deltas per worker twice: `perWorker` honors the
	// component filter (it defines the worker's own statistics and which
	// workers record windows), while `allWork` spans every task of every
	// topology — machine-level co-location features must see neighbours
	// the filter excludes, or cross-topology interference would be
	// invisible to the predictor.
	type agg struct {
		exec, emit        int64
		execLat, queueLat time.Duration
		queueLen          int
	}
	perWorker := map[string]*agg{}
	allWork := map[string]*agg{}
	allNodeOf := map[string]string{}
	for _, ts := range snap.Tasks {
		pts, ok := prev.TaskByID(ts.TaskID)
		if !ok {
			continue
		}
		u := allWork[ts.WorkerID]
		if u == nil {
			u = &agg{}
			allWork[ts.WorkerID] = u
			allNodeOf[ts.WorkerID] = ts.NodeID
		}
		u.exec += ts.Executed - pts.Executed
		u.emit += ts.Emitted - pts.Emitted
		u.execLat += ts.ExecLatency - pts.ExecLatency
		if s.components != nil && !s.components[ts.Component] {
			continue
		}
		a := perWorker[ts.WorkerID]
		if a == nil {
			a = &agg{}
			perWorker[ts.WorkerID] = a
		}
		a.exec += ts.Executed - pts.Executed
		a.emit += ts.Emitted - pts.Emitted
		a.execLat += ts.ExecLatency - pts.ExecLatency
		a.queueLat += ts.QueueLatency - pts.QueueLatency
		a.queueLen += ts.QueueLen
	}
	deltas := map[string]workerDelta{}
	nodeOf := map[string]string{}
	misbehaving := map[string]bool{}
	for _, w := range snap.Workers {
		a, ok := perWorker[w.WorkerID]
		if !ok {
			continue
		}
		var d workerDelta
		exec := float64(a.exec)
		d.execRate = exec / dt
		d.emitRate = float64(a.emit) / dt
		if exec > 0 {
			d.avgExecMs = a.execLat.Seconds() * 1000 / exec
			d.avgQueueMs = a.queueLat.Seconds() * 1000 / exec
		} else if hist := s.series[w.WorkerID]; len(hist) > 0 {
			// No executions this window (e.g. the worker is bypassed):
			// carry the last estimate forward — absence of observations is
			// not evidence of health.
			d.avgExecMs = hist[len(hist)-1].AvgExecMs
			d.avgQueueMs = hist[len(hist)-1].AvgQueueMs
		}
		d.queueLen = float64(a.queueLen)
		deltas[w.WorkerID] = d
		nodeOf[w.WorkerID] = w.NodeID
		misbehaving[w.WorkerID] = w.Misbehaving
	}
	nodeBusy := map[string]float64{}
	for _, n := range snap.Nodes {
		nodeBusy[n.NodeID] = float64(n.Busy)
	}
	for id, d := range deltas {
		node := nodeOf[id]
		// Co-location features span every worker on the node — including
		// other topologies' workers the component filter excludes.
		var coWorkers, coExec, coLatSum float64
		coCount := 0
		for other, u := range allWork {
			if other == id || allNodeOf[other] != node {
				continue
			}
			coWorkers++
			coExec += float64(u.exec) / dt
			if u.exec > 0 {
				coLatSum += u.execLat.Seconds() * 1000 / float64(u.exec)
				coCount++
			}
		}
		w := WindowStats{
			WorkerID:    id,
			NodeID:      node,
			Start:       prev.At,
			End:         snap.At,
			ExecRate:    d.execRate,
			EmitRate:    d.emitRate,
			AvgExecMs:   d.avgExecMs,
			AvgQueueMs:  d.avgQueueMs,
			QueueLen:    d.queueLen,
			Misbehaving: misbehaving[id],
			CoWorkers:   coWorkers,
			CoExecRate:  coExec,
			NodeBusy:    nodeBusy[node],
		}
		if coCount > 0 {
			w.CoAvgExecMs = coLatSum / float64(coCount)
		}
		s.series[id] = append(s.series[id], w)
		if s.maxLen > 0 && len(s.series[id]) > s.maxLen {
			s.series[id] = s.series[id][len(s.series[id])-s.maxLen:]
		}
	}
}

// Workers returns the worker ids with at least one window, sorted.
func (s *Sampler) Workers() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	//dspslint:ignore maporder keys are sorted below before returning, so the map order never escapes
	for id := range s.series {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Series returns a copy of one worker's windows.
func (s *Sampler) Series(workerID string) []WindowStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	src := s.series[workerID]
	out := make([]WindowStats, len(src))
	copy(out, src)
	return out
}

// Len returns the number of windows recorded for a worker.
func (s *Sampler) Len(workerID string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.series[workerID])
}

// Reset drops all windows and the baseline snapshot.
func (s *Sampler) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.prev = nil
	s.series = make(map[string][]WindowStats)
}

// TargetMetric selects which performance metric the predictor forecasts.
type TargetMetric int

const (
	// TargetProcTime predicts the mean per-tuple processing time (ms),
	// the paper's primary prediction target.
	TargetProcTime TargetMetric = iota
	// TargetThroughput predicts the worker's execute rate (tuples/s).
	TargetThroughput
)

// String implements fmt.Stringer.
func (m TargetMetric) String() string {
	switch m {
	case TargetProcTime:
		return "proc-time-ms"
	case TargetThroughput:
		return "throughput-tps"
	default:
		return fmt.Sprintf("TargetMetric(%d)", int(m))
	}
}

// FeatureConfig selects which statistics enter the feature vector.
type FeatureConfig struct {
	// Interference includes the machine-level co-located-worker features,
	// the paper's key modelling choice (ablated in E4).
	Interference bool
}

// FeatureNames returns the feature labels in vector order.
func FeatureNames(cfg FeatureConfig) []string {
	names := []string{"exec_rate", "emit_rate", "avg_exec_ms", "avg_queue_ms", "queue_len"}
	if cfg.Interference {
		names = append(names, "co_workers", "co_exec_rate", "co_avg_exec_ms", "node_busy")
	}
	return names
}

// Features assembles one window's feature vector.
func Features(w WindowStats, cfg FeatureConfig) []float64 {
	out := []float64{w.ExecRate, w.EmitRate, w.AvgExecMs, w.AvgQueueMs, w.QueueLen}
	if cfg.Interference {
		out = append(out, w.CoWorkers, w.CoExecRate, w.CoAvgExecMs, w.NodeBusy)
	}
	return out
}

// Target extracts the chosen target metric from a window.
func Target(w WindowStats, metric TargetMetric) float64 {
	switch metric {
	case TargetThroughput:
		return w.ExecRate
	default:
		return w.AvgExecMs
	}
}

// ToSeries converts a worker's windows into a timeseries.Series for the
// predictors.
func ToSeries(windows []WindowStats, metric TargetMetric, cfg FeatureConfig) *timeseries.Series {
	s := &timeseries.Series{Points: make([]timeseries.Point, len(windows))}
	for i, w := range windows {
		s.Points[i] = timeseries.Point{
			Features: Features(w, cfg),
			Target:   Target(w, metric),
		}
	}
	return s
}
