package telemetry

import (
	"math"
	"testing"
	"time"

	"predstream/internal/dsps"
)

// snapAt builds a synthetic snapshot with two workers on one node and one
// on another.
func snapAt(at time.Time, execW0, execW1 int64, execLatW0 time.Duration) *dsps.Snapshot {
	return &dsps.Snapshot{
		At: at,
		Tasks: []dsps.TaskStats{
			{TaskID: 0, Component: "b", WorkerID: "w0", NodeID: "n0", Executed: execW0, ExecLatency: execLatW0},
			{TaskID: 1, Component: "b", WorkerID: "w1", NodeID: "n0", Executed: execW1},
			{TaskID: 2, Component: "b", WorkerID: "w2", NodeID: "n1", Executed: 5},
		},
		Workers: []dsps.WorkerStats{
			{WorkerID: "w0", NodeID: "n0", Executed: execW0, ExecLatency: execLatW0,
				Tasks: []dsps.TaskStats{{TaskID: 0, Executed: execW0, ExecLatency: execLatW0}}},
			{WorkerID: "w1", NodeID: "n0", Executed: execW1,
				Tasks: []dsps.TaskStats{{TaskID: 1, Executed: execW1}}},
			{WorkerID: "w2", NodeID: "n1", Executed: 5,
				Tasks: []dsps.TaskStats{{TaskID: 2, Executed: 5}}},
		},
		Nodes: []dsps.NodeStats{
			{NodeID: "n0", Cores: 4, Busy: 2, Workers: []string{"w0", "w1"}},
			{NodeID: "n1", Cores: 4, Busy: 0, Workers: []string{"w2"}},
		},
	}
}

func TestSamplerFirstSampleIsBaseline(t *testing.T) {
	s := NewSampler(0)
	s.Sample(snapAt(time.Unix(0, 0), 0, 0, 0))
	if len(s.Workers()) != 0 {
		t.Fatal("baseline sample produced windows")
	}
}

func TestSamplerDerivesRatesAndLatency(t *testing.T) {
	s := NewSampler(0)
	t0 := time.Unix(100, 0)
	s.Sample(snapAt(t0, 0, 0, 0))
	// After 2s: w0 executed 200 tuples totalling 400ms of latency.
	s.Sample(snapAt(t0.Add(2*time.Second), 200, 100, 400*time.Millisecond))
	w0 := s.Series("w0")
	if len(w0) != 1 {
		t.Fatalf("w0 windows = %d", len(w0))
	}
	win := w0[0]
	if math.Abs(win.ExecRate-100) > 1e-9 {
		t.Fatalf("ExecRate = %v want 100", win.ExecRate)
	}
	if math.Abs(win.AvgExecMs-2) > 1e-9 {
		t.Fatalf("AvgExecMs = %v want 2", win.AvgExecMs)
	}
	// Machine-level features: w1 is co-located on n0 with exec rate 50.
	if win.CoWorkers != 1 {
		t.Fatalf("CoWorkers = %v", win.CoWorkers)
	}
	if math.Abs(win.CoExecRate-50) > 1e-9 {
		t.Fatalf("CoExecRate = %v want 50", win.CoExecRate)
	}
	if win.NodeBusy != 2 {
		t.Fatalf("NodeBusy = %v", win.NodeBusy)
	}
	// w2 is alone on its node.
	w2 := s.Series("w2")[0]
	if w2.CoWorkers != 0 || w2.CoExecRate != 0 {
		t.Fatalf("w2 co-features = %+v", w2)
	}
}

func TestSamplerMaxLenTrims(t *testing.T) {
	s := NewSampler(2)
	t0 := time.Unix(0, 0)
	for i := 0; i < 5; i++ {
		s.Sample(snapAt(t0.Add(time.Duration(i)*time.Second), int64(i*10), 0, 0))
	}
	if got := s.Len("w0"); got != 2 {
		t.Fatalf("retained %d windows, want 2", got)
	}
	// The retained windows are the most recent ones.
	wins := s.Series("w0")
	if !wins[1].End.After(wins[0].End) {
		t.Fatal("windows out of order")
	}
}

func TestSamplerZeroOrNegativeDtIgnored(t *testing.T) {
	s := NewSampler(0)
	t0 := time.Unix(0, 0)
	s.Sample(snapAt(t0, 0, 0, 0))
	s.Sample(snapAt(t0, 10, 0, 0)) // same timestamp
	if len(s.Workers()) != 0 {
		t.Fatal("zero-dt sample produced windows")
	}
}

func TestSamplerReset(t *testing.T) {
	s := NewSampler(0)
	t0 := time.Unix(0, 0)
	s.Sample(snapAt(t0, 0, 0, 0))
	s.Sample(snapAt(t0.Add(time.Second), 10, 0, 0))
	if len(s.Workers()) == 0 {
		t.Fatal("no windows before reset")
	}
	s.Reset()
	if len(s.Workers()) != 0 {
		t.Fatal("windows survived reset")
	}
}

func TestFeatureVectorShapes(t *testing.T) {
	w := WindowStats{ExecRate: 1, EmitRate: 2, AvgExecMs: 3, AvgQueueMs: 4, QueueLen: 5,
		CoWorkers: 6, CoExecRate: 7, CoAvgExecMs: 8, NodeBusy: 9}
	base := Features(w, FeatureConfig{})
	if len(base) != 5 || base[2] != 3 {
		t.Fatalf("base features = %v", base)
	}
	full := Features(w, FeatureConfig{Interference: true})
	if len(full) != 9 || full[5] != 6 || full[8] != 9 {
		t.Fatalf("full features = %v", full)
	}
	if got := len(FeatureNames(FeatureConfig{})); got != 5 {
		t.Fatalf("base names = %d", got)
	}
	if got := len(FeatureNames(FeatureConfig{Interference: true})); got != 9 {
		t.Fatalf("full names = %d", got)
	}
}

func TestTargetSelection(t *testing.T) {
	w := WindowStats{ExecRate: 120, AvgExecMs: 7}
	if got := Target(w, TargetProcTime); got != 7 {
		t.Fatalf("proc-time target = %v", got)
	}
	if got := Target(w, TargetThroughput); got != 120 {
		t.Fatalf("throughput target = %v", got)
	}
	if TargetProcTime.String() != "proc-time-ms" || TargetThroughput.String() != "throughput-tps" {
		t.Fatal("TargetMetric strings wrong")
	}
	if TargetMetric(99).String() == "" {
		t.Fatal("unknown metric string empty")
	}
}

func TestToSeries(t *testing.T) {
	wins := []WindowStats{
		{ExecRate: 10, AvgExecMs: 1},
		{ExecRate: 20, AvgExecMs: 2},
	}
	s := ToSeries(wins, TargetProcTime, FeatureConfig{Interference: true})
	if s.Len() != 2 {
		t.Fatalf("series len = %d", s.Len())
	}
	if s.Points[1].Target != 2 {
		t.Fatalf("target = %v", s.Points[1].Target)
	}
	if s.FeatureDim() != 9 {
		t.Fatalf("feature dim = %d", s.FeatureDim())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSamplerEndToEndWithEngine(t *testing.T) {
	// Run a real topology and verify the sampler derives plausible
	// windows from live snapshots.
	spoutN := 2000
	b := dsps.NewTopologyBuilder("telemetry")
	emitted := 0
	var col dsps.SpoutCollector
	b.SetSpout("src", func() dsps.Spout {
		return &dsps.SpoutFunc{
			OpenFn: func(_ dsps.TopologyContext, c dsps.SpoutCollector) { col = c },
			NextFn: func() bool {
				if emitted >= spoutN {
					return false
				}
				col.Emit(dsps.Values{emitted}, emitted)
				emitted++
				return true
			},
		}
	}, 1, "n")
	b.SetBolt("work", func() dsps.Bolt { return &dsps.BoltFunc{} }, 2).
		ShuffleGrouping("src").
		WithExecCost(50 * time.Microsecond)
	topo, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	c := dsps.NewCluster(dsps.ClusterConfig{Nodes: 1, Delayer: dsps.NopDelayer{}, Seed: 7})
	if err := c.Submit(topo, dsps.SubmitConfig{Workers: 2}); err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	s := NewSampler(0)
	for i := 0; i < 5; i++ {
		s.Sample(c.Snapshot())
		time.Sleep(20 * time.Millisecond)
	}
	c.Drain(5 * time.Second)
	s.Sample(c.Snapshot())
	workers := s.Workers()
	if len(workers) != 2 {
		t.Fatalf("workers = %v", workers)
	}
	var sawWork bool
	for _, id := range workers {
		for _, w := range s.Series(id) {
			if w.ExecRate > 0 {
				sawWork = true
				if w.AvgExecMs <= 0 {
					t.Fatalf("window with work has zero latency: %+v", w)
				}
			}
		}
	}
	if !sawWork {
		t.Fatal("no window recorded any work")
	}
}
