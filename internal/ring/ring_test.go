package ring

import (
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestZeroCapacityRejected(t *testing.T) {
	for _, c := range []int{0, -1, -1024} {
		if r, ok := New[int](c); ok || r != nil {
			t.Fatalf("New(%d) = (%v, %v), want rejection", c, r, ok)
		}
	}
}

func TestCapacityRoundsToPowerOfTwo(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 5: 8, 1000: 1024, 1024: 1024}
	for in, want := range cases {
		r, ok := New[int](in)
		if !ok {
			t.Fatalf("New(%d) rejected", in)
		}
		if r.Cap() != want {
			t.Fatalf("New(%d).Cap() = %d, want %d", in, r.Cap(), want)
		}
	}
}

// TestWrapAround drives the free-running indices through many times the
// capacity so every slot is reused and the mask arithmetic is exercised
// across the wrap boundary, checking FIFO order and exact full/empty
// behavior at capacity.
func TestWrapAround(t *testing.T) {
	r, _ := New[int](8)
	next, got := 0, 0
	for round := 0; round < 1000; round++ {
		// Fill to capacity; the next push must fail.
		for i := 0; i < r.Cap(); i++ {
			if !r.Push(next) {
				t.Fatalf("round %d: push %d failed below capacity", round, i)
			}
			next++
		}
		if r.Push(-1) {
			t.Fatalf("round %d: push succeeded at capacity", round)
		}
		if r.Len() != r.Cap() {
			t.Fatalf("round %d: Len = %d at capacity %d", round, r.Len(), r.Cap())
		}
		// Drain fully in FIFO order; the next pop must fail.
		for i := 0; i < r.Cap(); i++ {
			v, ok := r.Pop()
			if !ok || v != got {
				t.Fatalf("round %d: pop = (%d, %v), want (%d, true)", round, v, ok, got)
			}
			got++
		}
		if _, ok := r.Pop(); ok {
			t.Fatalf("round %d: pop succeeded on empty ring", round)
		}
		if !r.Empty() {
			t.Fatalf("round %d: not empty after drain", round)
		}
	}
}

func TestBatchWrapAround(t *testing.T) {
	r, _ := New[int](8)
	src := make([]int, 5)
	dst := make([]int, 5)
	next, got := 0, 0
	for round := 0; round < 2000; round++ {
		for i := range src {
			src[i] = next + i
		}
		n := r.PushBatch(src)
		next += n
		if free := r.Cap() - r.Len(); n != 5 && n != 5-(5-free)-0 && r.Len() != r.Cap() {
			t.Fatalf("round %d: partial push %d with ring not full", round, n)
		}
		m := r.PopBatch(dst[:3])
		for i := 0; i < m; i++ {
			if dst[i] != got+i {
				t.Fatalf("round %d: popped %d, want %d", round, dst[i], got+i)
			}
		}
		got += m
	}
	// Drain the remainder and confirm no element was lost or reordered.
	for {
		v, ok := r.Pop()
		if !ok {
			break
		}
		if v != got {
			t.Fatalf("drain: popped %d, want %d", v, got)
		}
		got++
	}
	if got != next {
		t.Fatalf("drained %d elements, pushed %d", got, next)
	}
}

func TestCloseStopsPushNotPop(t *testing.T) {
	r, _ := New[int](4)
	r.Push(1)
	r.Push(2)
	r.Close()
	if !r.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	if r.Push(3) {
		t.Fatal("push succeeded on closed ring")
	}
	if r.PushBatch([]int{3, 4}) != 0 {
		t.Fatal("batch push succeeded on closed ring")
	}
	for want := 1; want <= 2; want++ {
		if v, ok := r.Pop(); !ok || v != want {
			t.Fatalf("pop after close = (%d, %v), want (%d, true)", v, ok, want)
		}
	}
}

// TestCloseWhileParked closes the producer side while the consumer is
// parked on its Waiter: the consumer must observe the close and exit
// rather than sleep forever. Run with -race this also checks the
// park/wake protocol for data races.
func TestCloseWhileParked(t *testing.T) {
	for trial := 0; trial < 200; trial++ {
		r, _ := New[int](4)
		w := NewWaiter()
		done := make(chan int, 1)
		go func() { // consumer
			sum := 0
			for {
				if v, ok := r.Pop(); ok {
					sum += v
					continue
				}
				w.Prepare()
				if !r.Empty() { // re-check after Prepare
					w.Cancel()
					continue
				}
				if r.Closed() {
					w.Cancel()
					done <- sum
					return
				}
				select {
				case <-w.C():
				case <-time.After(2 * time.Second):
					w.Cancel()
					done <- -1
					return
				}
			}
		}()
		// Producer: a few pushes, then close, each followed by Wake.
		for i := 1; i <= 3; i++ {
			for !r.Push(i) {
				runtime.Gosched()
			}
			w.Wake()
		}
		r.Close()
		w.Wake()
		if got := <-done; got != 6 {
			t.Fatalf("trial %d: consumer returned %d, want 6", trial, got)
		}
	}
}

// TestConcurrentSPSC hammers one producer against one consumer through
// a tiny ring; under -race this validates the hand-off establishes
// happens-before for the transported values.
func TestConcurrentSPSC(t *testing.T) {
	const total = 100000
	r, _ := New[uint64](16)
	w := NewWaiter()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // consumer
		defer wg.Done()
		want := uint64(0)
		buf := make([]uint64, 8)
		for want < total {
			n := r.PopBatch(buf)
			if n == 0 {
				w.Prepare()
				if r.Empty() {
					select {
					case <-w.C():
					case <-time.After(5 * time.Second):
						t.Error("consumer stalled")
						w.Cancel()
						return
					}
				} else {
					w.Cancel()
				}
				continue
			}
			for i := 0; i < n; i++ {
				if buf[i] != want {
					t.Errorf("got %d, want %d", buf[i], want)
					return
				}
				want++
			}
		}
	}()
	for i := uint64(0); i < total; {
		if r.Push(i) {
			i++
			w.Wake()
		} else {
			// Yield on a full ring: on a single-P host the consumer
			// cannot drain until the producer gives up the processor.
			runtime.Gosched()
		}
	}
	wg.Wait()
}

func TestWaiterSpuriousTokenDrained(t *testing.T) {
	w := NewWaiter()
	w.Prepare()
	w.Wake() // deposits a token
	w.Cancel()
	w.Prepare()
	select {
	case <-w.C():
		t.Fatal("stale token survived Cancel")
	default:
	}
	w.Cancel()
}

func TestParseWaitStrategy(t *testing.T) {
	for in, want := range map[string]WaitStrategy{
		"": WaitHybrid, "hybrid": WaitHybrid, "spin": WaitSpin, "park": WaitPark,
	} {
		got, err := ParseWaitStrategy(in)
		if err != nil || got != want {
			t.Fatalf("ParseWaitStrategy(%q) = (%v, %v), want %v", in, got, err, want)
		}
		if got.String() == "" {
			t.Fatalf("empty String() for %v", got)
		}
	}
	if _, err := ParseWaitStrategy("bogus"); err == nil {
		t.Fatal("ParseWaitStrategy accepted bogus")
	}
}

func BenchmarkPushPop(b *testing.B) {
	r, _ := New[uint64](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Push(uint64(i))
		r.Pop()
	}
}

func BenchmarkBatch64(b *testing.B) {
	r, _ := New[uint64](1024)
	src := make([]uint64, 64)
	dst := make([]uint64, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.PushBatch(src)
		r.PopBatch(dst)
	}
}
