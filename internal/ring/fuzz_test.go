package ring

import "testing"

// FuzzRingBatchOps model-checks the ring against a plain slice FIFO.
// Each input byte drives one operation (single push, batch push, single
// pop, batch pop, len query); the low bits pick batch sizes so the
// fuzzer explores wrap-around, exact-full, and exact-empty boundaries
// on rings of varying capacity.
func FuzzRingBatchOps(f *testing.F) {
	f.Add(uint8(8), []byte{0, 0, 0, 2, 2, 1, 3})
	f.Add(uint8(1), []byte{0, 0, 2, 2, 0, 2})
	f.Add(uint8(3), []byte{1, 1, 1, 3, 3, 3, 4})
	f.Add(uint8(200), []byte{1, 0, 3, 2, 1, 0, 3, 2, 4, 4})
	f.Fuzz(func(t *testing.T, capByte uint8, ops []byte) {
		capacity := int(capByte%64) + 1
		r, ok := New[uint64](capacity)
		if !ok {
			t.Fatalf("New(%d) rejected", capacity)
		}
		var model []uint64
		next := uint64(0)
		scratch := make([]uint64, 70)
		for _, op := range ops {
			switch op % 5 {
			case 0: // single push
				want := len(model) < r.Cap()
				if got := r.Push(next); got != want {
					t.Fatalf("Push -> %v with %d/%d buffered", got, len(model), r.Cap())
				}
				if want {
					model = append(model, next)
				}
				next++
			case 1: // batch push
				n := int(op/5)%len(scratch) + 1
				for i := 0; i < n; i++ {
					scratch[i] = next + uint64(i)
				}
				free := r.Cap() - len(model)
				want := n
				if want > free {
					want = free
				}
				if got := r.PushBatch(scratch[:n]); got != want {
					t.Fatalf("PushBatch(%d) -> %d, want %d (free %d)", n, got, want, free)
				}
				model = append(model, scratch[:want]...)
				next += uint64(want)
			case 2: // single pop
				v, got := r.Pop()
				if want := len(model) > 0; got != want {
					t.Fatalf("Pop -> %v with %d buffered", got, len(model))
				}
				if got {
					if v != model[0] {
						t.Fatalf("Pop = %d, want %d", v, model[0])
					}
					model = model[1:]
				}
			case 3: // batch pop
				n := int(op/5)%len(scratch) + 1
				want := n
				if want > len(model) {
					want = len(model)
				}
				if got := r.PopBatch(scratch[:n]); got != want {
					t.Fatalf("PopBatch(%d) -> %d, want %d", n, got, want)
				}
				for i := 0; i < want; i++ {
					if scratch[i] != model[i] {
						t.Fatalf("PopBatch[%d] = %d, want %d", i, scratch[i], model[i])
					}
				}
				model = model[want:]
			case 4: // invariants
				if r.Len() != len(model) {
					t.Fatalf("Len = %d, model %d", r.Len(), len(model))
				}
				if r.Empty() != (len(model) == 0) {
					t.Fatalf("Empty = %v with %d buffered", r.Empty(), len(model))
				}
			}
		}
	})
}
