package ring

import (
	"fmt"
	"sync/atomic"
)

// Waiter is the consumer-side parking primitive for one or more SPSC
// rings. Rings themselves are non-blocking; a consumer that finds all
// of its rings empty parks on its Waiter and producers wake it after a
// push.
//
// Protocol (the Dekker-style store/load pairing makes lost wakeups
// impossible under Go's sequentially consistent atomics):
//
//	consumer: Prepare() → re-check rings → if empty, select on C()
//	          (plus shutdown channels); afterwards Cancel() unless the
//	          wake arrived via C().
//	producer: push → Wake().
//
// Either the producer's push is ordered before the consumer's Prepare
// — then the consumer's re-check observes the element — or Prepare is
// ordered first, in which case the producer's Wake observes the parked
// flag and delivers a token. Spurious tokens are possible (a Wake that
// raced a Cancel); consumers must treat C() firing as a hint to
// re-check, never as a guarantee of data.
type Waiter struct {
	parked atomic.Int32
	ch     chan struct{}
}

// NewWaiter builds a Waiter ready for use.
func NewWaiter() *Waiter {
	return &Waiter{ch: make(chan struct{}, 1)}
}

// Prepare announces intent to park. Call before the final emptiness
// re-check; pair with Cancel if the consumer does not end up blocking
// on C() or wakes via a different channel.
func (w *Waiter) Prepare() { w.parked.Store(1) }

// Cancel retracts a Prepare and drains any token a concurrent Wake may
// have deposited, so the next park round does not wake instantly.
func (w *Waiter) Cancel() {
	w.parked.Store(0)
	select {
	case <-w.ch:
	default:
	}
}

// Wake unparks the consumer if it is parked (or about to park). Called
// by producers after a successful push; cheap no-op when the consumer
// is running.
func (w *Waiter) Wake() {
	if w.parked.Load() != 0 && w.parked.CompareAndSwap(1, 0) {
		select {
		case w.ch <- struct{}{}:
		default:
		}
	}
}

// C returns the channel a prepared consumer blocks on. A receive means
// "re-check your rings"; the parked flag is already cleared.
func (w *Waiter) C() <-chan struct{} { return w.ch }

// WaitStrategy selects how a consumer behaves when its rings run dry.
type WaitStrategy int

const (
	// WaitHybrid spins briefly (yielding the processor between probes)
	// and parks on the Waiter if no work arrives. Default: near-spin
	// latency under load, near-zero CPU when idle.
	WaitHybrid WaitStrategy = iota
	// WaitSpin never parks; lowest latency, burns a core while idle.
	WaitSpin
	// WaitPark parks immediately; lowest idle cost, pays a wake on
	// every empty→non-empty transition.
	WaitPark
)

// String returns the knob spelling of the strategy.
func (s WaitStrategy) String() string {
	switch s {
	case WaitSpin:
		return "spin"
	case WaitPark:
		return "park"
	default:
		return "hybrid"
	}
}

// ParseWaitStrategy maps a knob string ("hybrid", "spin", "park"; ""
// means hybrid) to a WaitStrategy.
func ParseWaitStrategy(s string) (WaitStrategy, error) {
	switch s {
	case "", "hybrid":
		return WaitHybrid, nil
	case "spin":
		return WaitSpin, nil
	case "park":
		return WaitPark, nil
	default:
		return WaitHybrid, fmt.Errorf("ring: unknown wait strategy %q (want hybrid, spin, or park)", s)
	}
}
