// Package ring provides a bounded, lock-free single-producer
// single-consumer (SPSC) ring buffer and the parking primitive used to
// wait on one when it is empty.
//
// The ring is the data-plane hand-off for the stream engine
// (internal/dsps): each producer→consumer edge gets its own SPSC so
// neither side ever takes a lock or contends a CAS on the common path.
// The discipline is strict: exactly one goroutine may call the push
// side (Push/PushBatch/Close) and exactly one goroutine the pop side
// (Pop/PopBatch) over the ring's lifetime. `dspslint`'s ringmisuse
// analyzer enforces the ownership annotations in internal/dsps.
//
// Layout follows the classic Lamport queue: a power-of-two slot array
// indexed by free-running head/tail counters masked into the buffer.
// head and tail live on separate cache lines so the producer's tail
// stores never false-share with the consumer's head stores, and each
// side keeps a local cache of the opposite index so the common case
// (ring neither full nor empty) touches only one shared word.
//
// Go's sync/atomic operations are sequentially consistent, which is
// stronger than the acquire/release pairs the algorithm needs, and the
// race detector models them as synchronization — the package is
// race-clean by construction, verified by the -race stress tests.
package ring

import "sync/atomic"

// cacheLine is the assumed coherence granularity. 64 bytes covers
// x86-64 and most arm64 parts; oversizing only wastes a few bytes.
const cacheLine = 64

// SPSC is a bounded single-producer single-consumer ring buffer.
// The zero value is not usable; construct with New.
type SPSC[T any] struct {
	buf  []T
	mask uint64

	_    [cacheLine]byte
	head atomic.Uint64 // next slot to pop; written by consumer only
	// cachedTail is the producer-visible snapshot of tail taken by the
	// consumer; consumer-owned, no atomics needed.
	cachedTail uint64

	_    [cacheLine - 16]byte
	tail atomic.Uint64 // next slot to push; written by producer only
	// cachedHead is the consumer-visible snapshot of head taken by the
	// producer; producer-owned, no atomics needed.
	cachedHead uint64

	_      [cacheLine - 16]byte
	closed atomic.Bool
}

// New builds an SPSC ring with at least the requested capacity,
// rounded up to the next power of two. Zero or negative capacities are
// rejected: a zero-capacity ring can never transfer an element, so
// asking for one is always a configuration bug.
func New[T any](capacity int) (*SPSC[T], bool) {
	if capacity <= 0 {
		return nil, false
	}
	n := uint64(1)
	for n < uint64(capacity) {
		n <<= 1
	}
	return &SPSC[T]{buf: make([]T, n), mask: n - 1}, true
}

// Cap returns the ring's capacity (the rounded power of two).
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of buffered elements. It is exact when called
// from either owning goroutine and a point-in-time estimate otherwise.
func (r *SPSC[T]) Len() int {
	t := r.tail.Load()
	h := r.head.Load()
	return int(t - h)
}

// Empty reports whether the ring currently holds no elements.
func (r *SPSC[T]) Empty() bool { return r.tail.Load() == r.head.Load() }

// Close marks the ring closed. Producer-side call; after Close every
// Push fails, while the consumer may keep draining buffered elements.
func (r *SPSC[T]) Close() { r.closed.Store(true) }

// Closed reports whether Close has been called.
func (r *SPSC[T]) Closed() bool { return r.closed.Load() }

// Push appends one element. It returns false when the ring is full or
// closed. Producer-side only.
func (r *SPSC[T]) Push(v T) bool {
	if r.closed.Load() {
		return false
	}
	t := r.tail.Load()
	if t-r.cachedHead >= uint64(len(r.buf)) {
		r.cachedHead = r.head.Load()
		if t-r.cachedHead >= uint64(len(r.buf)) {
			return false
		}
	}
	r.buf[t&r.mask] = v
	r.tail.Store(t + 1)
	return true
}

// PushBatch appends as many elements of vs as fit and returns how many
// were pushed. Producer-side only.
func (r *SPSC[T]) PushBatch(vs []T) int {
	if r.closed.Load() || len(vs) == 0 {
		return 0
	}
	t := r.tail.Load()
	free := uint64(len(r.buf)) - (t - r.cachedHead)
	if free < uint64(len(vs)) {
		r.cachedHead = r.head.Load()
		free = uint64(len(r.buf)) - (t - r.cachedHead)
	}
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(t+i)&r.mask] = vs[i]
	}
	if n > 0 {
		r.tail.Store(t + n)
	}
	return int(n)
}

// Pop removes and returns the oldest element. The second result is
// false when the ring is empty. Consumer-side only.
func (r *SPSC[T]) Pop() (T, bool) {
	var zero T
	h := r.head.Load()
	if h == r.cachedTail {
		r.cachedTail = r.tail.Load()
		if h == r.cachedTail {
			return zero, false
		}
	}
	v := r.buf[h&r.mask]
	r.buf[h&r.mask] = zero // release references for GC
	r.head.Store(h + 1)
	return v, true
}

// PopBatch removes up to len(dst) elements into dst and returns how
// many were popped. Consumer-side only.
func (r *SPSC[T]) PopBatch(dst []T) int {
	if len(dst) == 0 {
		return 0
	}
	var zero T
	h := r.head.Load()
	avail := r.cachedTail - h
	if avail < uint64(len(dst)) {
		r.cachedTail = r.tail.Load()
		avail = r.cachedTail - h
		if avail == 0 {
			return 0
		}
	}
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	for i := uint64(0); i < n; i++ {
		dst[i] = r.buf[(h+i)&r.mask]
		r.buf[(h+i)&r.mask] = zero
	}
	r.head.Store(h + n)
	return int(n)
}
