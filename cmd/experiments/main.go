// Command experiments regenerates the paper's evaluation: each subcommand
// prints the rows/series behind one reconstructed table or figure
// (E1..E14, see DESIGN.md), and `all` runs the full suite. With -out DIR
// each experiment's series is also written as a plot-ready CSV.
//
// Usage:
//
//	experiments <e1|…|e14|all> [flags]
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"predstream/internal/experiments"
	"predstream/internal/obs"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	if len(args) < 1 {
		usage(stderr)
		return fmt.Errorf("missing subcommand")
	}
	cmd := args[0]
	fs := flag.NewFlagSet(cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	steps := fs.Int("steps", 500, "trace length in measurement windows (accuracy experiments)")
	epochs := fs.Int("epochs", 40, "DRNN training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	horizon := fs.Int("horizon", 1, "forecast horizon in windows")
	workers := fs.Int("workers", 0, "DRNN training workers per mini-batch (0 = all CPUs; results are worker-count invariant)")
	measure := fs.Duration("measure", 3*time.Second, "measurement interval (reliability)")
	warmup := fs.Duration("warmup", 2*time.Second, "warmup before measurement (reliability)")
	outDir := fs.String("out", "", "also write each experiment's series as CSV into this directory")
	ackerShards := fs.Int("acker-shards", 0, "engine acker shard count, rounded up to a power of two (0 = engine default)")
	engineBatch := fs.Int("engine-batch", 0, "engine micro-batch size in tuples (0 = engine default)")
	flushInterval := fs.Duration("flush-interval", 0, "engine partial-batch flush deadline (0 = engine default)")
	ringSize := fs.Int("ring-size", 0, "engine SPSC ring capacity in batch slots; >0 enables the ring data plane (0 = channel plane)")
	waitStrategy := fs.String("wait-strategy", "", "engine ring-plane wait strategy: hybrid, spin or park (default hybrid)")
	obsAddr := fs.String("obs", "", "serve /metrics (Go runtime), /healthz and /debug/pprof on this address while the suite runs (e.g. :9090)")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(obs.NewRuntimeCollector())
		srv, err := obs.NewServer(*obsAddr, obs.ServerConfig{Registry: reg})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability listening on %s (/metrics /healthz /debug/pprof)\n", srv.Addr())
	}
	knobs := experiments.EngineKnobs{
		AckerShards: *ackerShards, BatchSize: *engineBatch, FlushInterval: *flushInterval,
		RingSize: *ringSize, WaitStrategy: *waitStrategy,
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
	}
	acc := experiments.AccuracyConfig{Steps: *steps, Epochs: *epochs, Seed: *seed, Horizon: *horizon, Workers: *workers}

	type csver interface{ CSV() [][]string }
	runOne := func(name string) error {
		fmt.Fprintf(stdout, "=== %s ===\n", name)
		start := time.Now()
		var err error
		var result csver
		switch name {
		case "e1":
			var r *experiments.AccuracyResult
			acc1 := acc
			acc1.App = experiments.AppURLCount
			if r, err = experiments.RunAccuracy(acc1); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e2":
			var r *experiments.AccuracyResult
			acc2 := acc
			acc2.App = experiments.AppContQuery
			if r, err = experiments.RunAccuracy(acc2); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e3":
			var r *experiments.OverlayResult
			if r, err = experiments.RunOverlay(acc); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e4":
			var r *experiments.AblationResult
			if r, err = experiments.RunAblation(*steps, *epochs, *seed, *workers); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e5":
			var r *experiments.GroupingResult
			if r, err = experiments.RunGrouping(experiments.GroupingConfig{Engine: knobs}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e6", "e7":
			// E6 (throughput) and E7 (latency) come from the same runs;
			// the table carries both columns.
			var r *experiments.ReliabilityResult
			if r, err = experiments.RunReliability(experiments.ReliabilityConfig{
				Warmup: *warmup, Measure: *measure, Seed: *seed, Engine: knobs,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e6s":
			// Stall variant: the misbehaving worker hangs completely; one
			// task per worker so only the controllable parse stage is hit.
			var r *experiments.ReliabilityResult
			if r, err = experiments.RunReliability(experiments.ReliabilityConfig{
				Misbehaving: []int{0, 1},
				Stall:       true,
				Workers:     10,
				Warmup:      *warmup, Measure: *measure, Seed: *seed, Engine: knobs,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e8":
			var r *experiments.ConvergenceResult
			if r, err = experiments.RunConvergence(acc); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e9":
			var r *experiments.SensitivityResult
			if r, err = experiments.RunSensitivity(acc, nil, nil); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e10":
			var r *experiments.ReactionResult
			if r, err = experiments.RunReaction(experiments.ReactionConfig{Seed: *seed}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e10r":
			// Recovery variant: the fault clears mid-run and the probe
			// share lets the controller re-admit the worker.
			var r *experiments.ReactionResult
			if r, err = experiments.RunReaction(experiments.ReactionConfig{
				Seed: *seed, Steps: 24, FaultAtStep: 6, ClearAtStep: 14, ProbeRatio: 0.05,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e11":
			var r *experiments.PolicyAblationResult
			if r, err = experiments.RunPolicyAblation(experiments.ReliabilityConfig{
				Warmup: *warmup, Measure: *measure, Seed: *seed, Engine: knobs,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e12":
			var r *experiments.InterferenceResult
			if r, err = experiments.RunInterference(experiments.InterferenceConfig{Seed: *seed}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e13":
			var r *experiments.ElasticResult
			if r, err = experiments.RunElastic(experiments.ElasticConfig{
				Warmup: *warmup, Seed: *seed, Engine: knobs,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		case "e14":
			var r *experiments.ServingResult
			if r, err = experiments.RunServing(experiments.ServingConfig{
				Steps: *steps, Epochs: *epochs, Seed: *seed, Workers: *workers,
			}); err == nil {
				result = r
				fmt.Fprint(stdout, r.Render())
			}
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		if err != nil {
			return err
		}
		if *outDir != "" && result != nil {
			path := filepath.Join(*outDir, name+".csv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := experiments.WriteCSV(f, result.CSV()); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "(series written to %s)\n", path)
		}
		fmt.Fprintf(stdout, "(%s in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
		return nil
	}

	names := []string{cmd}
	if cmd == "all" {
		names = []string{"e1", "e2", "e3", "e4", "e5", "e6", "e6s", "e8", "e9", "e10", "e10r", "e11", "e12", "e13", "e14"}
	}
	for _, n := range names {
		if err := runOne(n); err != nil {
			return err
		}
	}
	return nil
}

func usage(w io.Writer) {
	fmt.Fprintln(w, `usage: experiments <subcommand> [flags]

subcommands:
  e1    prediction accuracy, Windowed URL Count (DRNN vs ARIMA vs SVR)
  e2    prediction accuracy, Continuous Queries
  e3    predicted-vs-actual overlay of the best model
  e4    DRNN ablation: interference features and depth
  e5    dynamic grouping validation (requested vs observed splits)
  e6    throughput under misbehaving workers (framework vs static)
  e7    latency under misbehaving workers (same runs as e6)
  e6s   stall variant of e6 (hung worker; stall channel + re-routing)
  e8    DRNN training convergence
  e9    accuracy sensitivity to window size and horizon
  e10   control-loop reaction trace around a fault
  e10r  reaction trace with mid-run recovery and probe-based re-admission
  e11   planner policy ablation (bypass vs weighted vs uniform)
  e12   cross-topology co-location interference trace
  e13   elastic vs static parallelism under diurnal and flash-crowd load
  e14   quantized serving: int8 vs float64 accuracy delta and forward cost
  all   run the full suite`)
}
