package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunNoSubcommand(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run(nil, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "missing subcommand") {
		t.Fatalf("err = %v, want missing subcommand", err)
	}
	if !strings.Contains(errBuf.String(), "usage: experiments") {
		t.Fatalf("usage missing from stderr:\n%s", errBuf.String())
	}
}

func TestRunHelp(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"e5", "-h"}, &out, &errBuf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "-seed") {
		t.Fatalf("flag usage missing from stderr:\n%s", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"e5", "-bogus"}, &out, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"e99"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

// TestRunGroupingExperiment runs E5 (the cheapest live-engine experiment)
// end to end and also exercises the -out CSV path.
func TestRunGroupingExperiment(t *testing.T) {
	dir := t.TempDir()
	var out, errBuf bytes.Buffer
	if err := run([]string{"e5", "-out", dir}, &out, &errBuf); err != nil {
		t.Fatalf("run e5: %v\nstderr: %s", err, errBuf.String())
	}
	s := out.String()
	if !strings.Contains(s, "=== e5 ===") {
		t.Fatalf("no banner:\n%s", s)
	}
	csv := filepath.Join(dir, "e5.csv")
	data, err := os.ReadFile(csv)
	if err != nil {
		t.Fatalf("no CSV written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("empty CSV")
	}
	if !strings.Contains(s, "(series written to") {
		t.Fatalf("no CSV confirmation:\n%s", s)
	}
}
