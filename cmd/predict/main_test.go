package main

import (
	"bytes"
	"errors"
	"flag"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-h"}, &out, &errBuf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "-app") {
		t.Fatalf("usage text missing from stderr:\n%s", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-bogus"}, &out, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownTarget(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-target", "latency"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "unknown target") {
		t.Fatalf("err = %v, want unknown target", err)
	}
}

func TestRunUnknownApp(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-app", "nope"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Fatalf("err = %v, want unknown app", err)
	}
}

// tinyArgs keeps the synthetic end-to-end run to well under a second.
func tinyArgs(extra ...string) []string {
	return append([]string{
		"-steps", "60", "-epochs", "2", "-window", "4", "-seed", "1",
	}, extra...)
}

func TestRunSyntheticComparison(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run(tinyArgs(), &out, &errBuf); err != nil {
		t.Fatalf("run: %v", err)
	}
	s := out.String()
	if !strings.Contains(s, "walk-forward over") {
		t.Fatalf("no comparison table:\n%s", s)
	}
	for _, model := range []string{"DRNN", "ARIMA", "SVR", "Naive"} {
		if !strings.Contains(s, model) {
			t.Fatalf("model %s missing from table:\n%s", model, s)
		}
	}
}

// TestRunSaveLoadRoundTrip checkpoints a fitted DRNN and evaluates the
// reloaded copy, covering both the -save and -load paths.
func TestRunSaveLoadRoundTrip(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "model.ckpt")
	var out, errBuf bytes.Buffer
	if err := run(tinyArgs("-save", ckpt), &out, &errBuf); err != nil {
		t.Fatalf("save run: %v", err)
	}
	if !strings.Contains(out.String(), "saved DRNN checkpoint") {
		t.Fatalf("no save confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run(tinyArgs("-load", ckpt), &out, &errBuf); err != nil {
		t.Fatalf("load run: %v", err)
	}
	if !strings.Contains(out.String(), "checkpoint evaluation over") {
		t.Fatalf("no checkpoint evaluation:\n%s", out.String())
	}
}

// TestRunTraceRoundTrip archives a synthetic trace to CSV and reads it
// back with -trace-in.
func TestRunTraceRoundTrip(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "trace.csv")
	var out, errBuf bytes.Buffer
	if err := run(tinyArgs("-trace-out", csv), &out, &errBuf); err != nil {
		t.Fatalf("archive run: %v", err)
	}
	if !strings.Contains(out.String(), "archived trace to") {
		t.Fatalf("no archive confirmation:\n%s", out.String())
	}
	out.Reset()
	if err := run(tinyArgs("-trace-in", csv), &out, &errBuf); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if !strings.Contains(out.String(), "walk-forward over") {
		t.Fatalf("no comparison table from archived trace:\n%s", out.String())
	}
}
