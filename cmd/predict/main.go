// Command predict trains and evaluates the performance predictors (DRNN,
// ARIMA, SVR, persistence) on a multilevel-statistics trace and prints the
// accuracy table. Traces come from the deterministic queueing-model
// generator by default, or from a live engine run of one of the two
// evaluation applications with -live.
//
// A fitted DRNN can be checkpointed with -save and reloaded with -load for
// evaluation only.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"predstream/internal/apps/contquery"
	"predstream/internal/apps/urlcount"
	"predstream/internal/arima"
	"predstream/internal/drnn"
	"predstream/internal/dsps"
	"predstream/internal/obs"
	"predstream/internal/stats"
	"predstream/internal/svr"
	"predstream/internal/telemetry"
	"predstream/internal/timeseries"
	"predstream/internal/trace"
	"predstream/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "predict: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("predict", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "urlcount", "workload profile: urlcount or contquery")
	steps := fs.Int("steps", 500, "trace length in measurement windows")
	window := fs.Int("window", 10, "model input window")
	horizon := fs.Int("horizon", 1, "forecast horizon")
	epochs := fs.Int("epochs", 40, "DRNN training epochs")
	seed := fs.Int64("seed", 1, "random seed")
	worker := fs.String("worker", "", "worker whose series to predict (default: first)")
	live := fs.Bool("live", false, "collect the trace from a live engine run instead of the synthetic generator")
	livePeriod := fs.Duration("live-period", 250*time.Millisecond, "live sampling period")
	target := fs.String("target", "proctime", "prediction target: proctime or throughput")
	noInterference := fs.Bool("no-interference", false, "drop co-located-worker features")
	cell := fs.String("cell", "lstm", "DRNN recurrent cell: lstm or gru")
	batch := fs.Int("batch", 0, "DRNN mini-batch size (0/1 = pure SGD)")
	workers := fs.Int("workers", 0, "DRNN training workers per mini-batch (0 = all CPUs; results are worker-count invariant)")
	sarimaPeriod := fs.Int("sarima-period", 0, "also compare a SARIMA(1,0,1)(1,0,0)_s baseline at this seasonal period")
	allWorkers := fs.Bool("all-workers", false, "evaluate over every worker's series, pooling the walk-forward residuals")
	savePath := fs.String("save", "", "write the fitted DRNN checkpoint to this path")
	loadPath := fs.String("load", "", "load a DRNN checkpoint instead of training")
	traceOut := fs.String("trace-out", "", "archive the trace to this CSV path")
	traceIn := fs.String("trace-in", "", "read the trace from this CSV path instead of generating/collecting")
	ackerShards := fs.Int("acker-shards", 0, "live engine acker shard count (0 = engine default)")
	engineBatch := fs.Int("engine-batch", 0, "live engine micro-batch size in tuples (0 = engine default)")
	flushInterval := fs.Duration("flush-interval", 0, "live engine partial-batch flush deadline (0 = engine default)")
	ringSize := fs.Int("ring-size", 0, "live engine SPSC ring capacity in batch slots; >0 enables the ring data plane (0 = channel plane)")
	waitStrategy := fs.String("wait-strategy", "", "live engine ring-plane wait strategy: hybrid, spin or park (default hybrid)")
	obsAddr := fs.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address (with -live also the engine metrics; e.g. :9090)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	engineCfg := dsps.ClusterConfig{
		Nodes: 2, AckerShards: *ackerShards, BatchSize: *engineBatch, FlushInterval: *flushInterval,
		RingSize: *ringSize, WaitStrategy: *waitStrategy,
	}
	var obsReg *obs.Registry
	if *obsAddr != "" {
		obsReg = obs.NewRegistry()
		obsReg.Register(obs.NewRuntimeCollector())
		srv, err := obs.NewServer(*obsAddr, obs.ServerConfig{Registry: obsReg})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability listening on %s (/metrics /healthz /debug/pprof)\n", srv.Addr())
	}

	metric := telemetry.TargetProcTime
	if *target == "throughput" {
		metric = telemetry.TargetThroughput
	} else if *target != "proctime" {
		return fmt.Errorf("unknown target %q", *target)
	}
	featCfg := telemetry.FeatureConfig{Interference: !*noInterference}

	var traces map[string][]telemetry.WindowStats
	var err error
	switch {
	case *traceIn != "":
		f, ferr := os.Open(*traceIn)
		if ferr != nil {
			return ferr
		}
		traces, err = trace.ReadCSV(f)
		f.Close()
	case *live:
		traces, err = collectLive(stdout, *app, *steps, *livePeriod, *seed, engineCfg, obsReg)
	default:
		traces, err = synthetic(*app, *steps, *seed)
	}
	if err != nil {
		return err
	}
	if *traceOut != "" {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			return ferr
		}
		if err := trace.WriteCSV(f, traces); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "archived trace to %s\n", *traceOut)
	}
	id := *worker
	if id == "" {
		for _, w := range sortedKeys(traces) {
			id = w
			break
		}
	}
	wins, ok := traces[id]
	if !ok {
		return fmt.Errorf("no trace for worker %q (have %v)", id, sortedKeys(traces))
	}
	fmt.Fprintf(stdout, "trace: %d windows for %s (%s, live=%v), target %s, interference=%v\n",
		len(wins), id, *app, *live, metric, featCfg.Interference)

	series := telemetry.ToSeries(wins, metric, featCfg)
	trainLen := series.Len() * 7 / 10

	model := drnn.New(drnn.Config{
		Window: *window, Horizon: *horizon, Epochs: *epochs, Seed: *seed, Cell: *cell,
		BatchSize: *batch, Workers: *workers,
	})
	models := []timeseries.Predictor{model}
	if *loadPath != "" {
		f, err := os.Open(*loadPath)
		if err != nil {
			return err
		}
		loaded, err := drnn.Load(f)
		f.Close()
		if err != nil {
			return err
		}
		// Evaluate the checkpoint directly on the held-out span.
		return evalCheckpoint(stdout, loaded, series, trainLen, *horizon)
	}
	factories := []func() timeseries.Predictor{
		func() timeseries.Predictor {
			return drnn.New(drnn.Config{
				Window: *window, Horizon: *horizon, Epochs: *epochs, Seed: *seed, Cell: *cell,
				BatchSize: *batch, Workers: *workers,
			})
		},
		func() timeseries.Predictor { return arima.New(3, 0, 1) },
		func() timeseries.Predictor {
			return svr.NewWindowPredictor(*window, *horizon, &svr.SVR{C: 10, Eps: 0.05, MaxIter: 200})
		},
		func() timeseries.Predictor { return &timeseries.NaivePredictor{} },
	}
	if *sarimaPeriod > 1 {
		factories = append(factories, func() timeseries.Predictor {
			return arima.NewSeasonal(1, 0, 1, 1, 0, *sarimaPeriod)
		})
	}

	if *allWorkers {
		// Pool every worker's walk-forward residuals per model; each
		// worker gets its own freshly fitted model instance.
		type pooled struct{ actual, pred []float64 }
		byModel := map[string]*pooled{}
		var modelOrder []string
		workersList := sortedKeys(traces)
		for _, wid := range workersList {
			ws := telemetry.ToSeries(traces[wid], metric, featCfg)
			tl := ws.Len() * 7 / 10
			for _, mk := range factories {
				m := mk()
				res, err := timeseries.WalkForward(m, ws, tl, *horizon)
				if err != nil {
					return fmt.Errorf("worker %s model %s: %w", wid, m.Name(), err)
				}
				p := byModel[m.Name()]
				if p == nil {
					p = &pooled{}
					byModel[m.Name()] = p
					modelOrder = append(modelOrder, m.Name())
				}
				p.actual = append(p.actual, res.Actual...)
				p.pred = append(p.pred, res.Predicted...)
			}
		}
		fmt.Fprintf(stdout, "pooled walk-forward over %d workers:\n", len(workersList))
		for _, name := range modelOrder {
			p := byModel[name]
			fmt.Fprintf(stdout, "  %s\n", stats.Evaluate(name, p.actual, p.pred))
		}
		return nil
	}

	models = append(models,
		arima.New(3, 0, 1),
		svr.NewWindowPredictor(*window, *horizon, &svr.SVR{C: 10, Eps: 0.05, MaxIter: 200}),
		&timeseries.NaivePredictor{},
	)
	if *sarimaPeriod > 1 {
		models = append(models, arima.NewSeasonal(1, 0, 1, 1, 0, *sarimaPeriod))
	}
	results, err := timeseries.Compare(models, series, trainLen, *horizon)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "walk-forward over %d held-out windows (train %d):\n", len(results[0].Actual), trainLen)
	for _, r := range results {
		fmt.Fprintf(stdout, "  %s\n", r.Report)
	}
	if *savePath != "" {
		f, err := os.Create(*savePath)
		if err != nil {
			return err
		}
		if err := model.Save(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "saved DRNN checkpoint (%d params) to %s\n", model.NumParams(), *savePath)
	}
	return nil
}

func evalCheckpoint(stdout io.Writer, model *drnn.Predictor, series *timeseries.Series, trainLen, horizon int) error {
	var actual, pred []float64
	for i := trainLen; i+horizon-1 < series.Len(); i++ {
		v, err := model.Predict(series.Slice(0, i), horizon)
		if err != nil {
			return err
		}
		pred = append(pred, v)
		actual = append(actual, series.Points[i+horizon-1].Target)
	}
	fmt.Fprintf(stdout, "checkpoint evaluation over %d windows:\n", len(actual))
	fmt.Fprintf(stdout, "  %s\n", stats.Evaluate("DRNN(ckpt)", actual, pred))
	return nil
}

func synthetic(app string, steps int, seed int64) (map[string][]telemetry.WindowStats, error) {
	switch app {
	case "urlcount":
		return trace.Synthetic(trace.SyntheticConfig{
			Workers: 4, Nodes: 2, BaseMs: 1,
			Shape: workload.SinusoidRate{Base: 900, Amplitude: 500, Period: 50 * time.Second},
			Steps: steps, Seed: seed,
		}), nil
	case "contquery":
		return trace.Synthetic(trace.SyntheticConfig{
			Workers: 4, Nodes: 2, BaseMs: 2,
			Shape: workload.BurstRate{Base: 400, BurstX: 3, Period: 20 * time.Second, Duration: 5 * time.Second},
			Steps: steps, Seed: seed,
		}), nil
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
}

// collectLive runs the app on a live cluster and samples per-worker
// windows; when reg is non-nil the cluster's metrics join the /metrics
// page for the duration of the collection.
func collectLive(stdout io.Writer, app string, windows int, period time.Duration, seed int64, ccfg dsps.ClusterConfig, reg *obs.Registry) (map[string][]telemetry.WindowStats, error) {
	var topo *dsps.Topology
	var err error
	var stage string
	switch app {
	case "urlcount":
		topo, _, _, err = urlcount.Build(urlcount.Config{
			Shape: workload.SinusoidRate{Base: 2000, Amplitude: 1200, Period: 30 * time.Second},
			Seed:  seed,
		})
		stage = "parse"
	case "contquery":
		topo, _, _, err = contquery.Build(contquery.Config{
			Shape: workload.BurstRate{Base: 1000, BurstX: 3, Period: 10 * time.Second, Duration: 3 * time.Second},
			Seed:  seed,
		})
		stage = "query"
	default:
		return nil, fmt.Errorf("unknown app %q", app)
	}
	if err != nil {
		return nil, err
	}
	ccfg.Seed = seed
	cluster := dsps.NewCluster(ccfg)
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: 4}); err != nil {
		return nil, err
	}
	defer cluster.Shutdown()
	fmt.Fprintf(stdout, "collecting %d live windows every %v from %q stage %s…\n", windows, period, app, stage)
	sampler := telemetry.NewSamplerFiltered(0, stage)
	if reg != nil {
		reg.Register(obs.NewClusterCollector(cluster))
		reg.Register(obs.NewSamplerCollector(sampler))
	}
	ticker := time.NewTicker(period)
	defer ticker.Stop()
	for i := 0; i <= windows; i++ {
		sampler.Sample(cluster.Snapshot())
		if i < windows {
			<-ticker.C
		}
	}
	out := map[string][]telemetry.WindowStats{}
	for _, id := range sampler.Workers() {
		out[id] = sampler.Series(id)
	}
	return out, nil
}

func sortedKeys(m map[string][]telemetry.WindowStats) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}
