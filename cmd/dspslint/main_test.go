package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errBuf.String())
	}
	for _, name := range []string{"allocfree", "atomicmix", "globalrand", "goroleak", "lockedsend", "lockorder", "maporder", "ringmisuse", "splicesend", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-enable", "bogus", "."}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "bogus") {
		t.Errorf("error does not name the unknown analyzer:\n%s", errBuf.String())
	}
}

func TestRunCorpusFindings(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", "../../internal/analysis/testdata/walltime", "-enable", "walltime", "."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("corpus run exited %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "time.Now in hot-path function") {
		t.Errorf("expected a walltime finding in output:\n%s", out.String())
	}
}

// TestRunGraphDump smoke-tests `dspslint -graph`: the allocfree corpus's
// hot root renders as a DOT digraph reaching its transitive callees.
func TestRunGraphDump(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", "../../internal/analysis/testdata/allocfree", "-graph", "emitFast", "."}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("-graph exited %d (stderr: %s)", code, errBuf.String())
	}
	for _, needle := range []string{"digraph callgraph", "emitFast", "stage", "record", "->"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("DOT output missing %q:\n%s", needle, out.String())
		}
	}
	if code := run([]string{"-C", "../../internal/analysis/testdata/allocfree", "-graph", "noSuchFunc", "."}, &out, &errBuf); code != 2 {
		t.Fatalf("-graph with unknown root exited %d, want 2", code)
	}
}

// TestRunBaselineDrift pins the CLI wiring of suppression-drift
// detection: a baseline recording a suppression that no longer exists
// (and missing the live ones) fails the run with actionable messages.
func TestRunBaselineDrift(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	stale := `{"schema": 2, "suppressions": [{"analyzer": "walltime", "position": "gone.go:1:1", "reason": "deleted"}]}`
	if err := os.WriteFile(path, []byte(stale), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", "../../internal/analysis/testdata/walltime", "-enable", "walltime", "-baseline", path, "."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("drifted baseline exited %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	for _, needle := range []string{"stale suppression", "unrecorded suppression"} {
		if !strings.Contains(errBuf.String(), needle) {
			t.Errorf("stderr missing %q:\n%s", needle, errBuf.String())
		}
	}
}

// TestRunTimings checks the -timings rendering: per-stage wall times for
// the load, the call-graph build, and each active analyzer.
func TestRunTimings(t *testing.T) {
	var out, errBuf bytes.Buffer
	run([]string{"-C", "../../internal/analysis/testdata/walltime", "-enable", "walltime", "-timings", "."}, &out, &errBuf)
	for _, needle := range []string{"timings: load", "callgraph", "walltime"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("-timings output missing %q:\n%s", needle, out.String())
		}
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitList[%d]: got %q, want %q", i, got[i], want[i])
		}
	}
	if splitList("") != nil {
		t.Fatalf("splitList(\"\") must be nil")
	}
}
