package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-list exited %d, stderr: %s", code, errBuf.String())
	}
	for _, name := range []string{"atomicmix", "globalrand", "lockedsend", "maporder", "walltime"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-no-such-flag"}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown flag exited %d, want 2", code)
	}
}

func TestRunUnknownAnalyzer(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-enable", "bogus", "."}, &out, &errBuf); code != 2 {
		t.Fatalf("unknown analyzer exited %d, want 2 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "bogus") {
		t.Errorf("error does not name the unknown analyzer:\n%s", errBuf.String())
	}
}

func TestRunCorpusFindings(t *testing.T) {
	var out, errBuf bytes.Buffer
	code := run([]string{"-C", "../../internal/analysis/testdata/walltime", "-enable", "walltime", "."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("corpus run exited %d, want 1 (stderr: %s)", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "time.Now in hot-path function") {
		t.Errorf("expected a walltime finding in output:\n%s", out.String())
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a, b ,,c ")
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("splitList: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitList[%d]: got %q, want %q", i, got[i], want[i])
		}
	}
	if splitList("") != nil {
		t.Fatalf("splitList(\"\") must be nil")
	}
}
