// Command dspslint is the repo's invariant linter: a stdlib-only static
// analyzer (go/parser + go/types with the source importer, no x/tools)
// that enforces the engine's determinism, hot-path, and concurrency rules.
//
// Usage:
//
//	dspslint [flags] [packages]
//
// Packages are directories or `dir/...` subtrees, default `./...`.
// Exit code 0 = clean, 1 = findings, 2 = load/type/usage failure.
//
// Run `dspslint -list` for the analyzers and the invariants they guard;
// see DESIGN.md "Static analysis v2" and docs/DIRECTIVES.md for the
// directive grammar (//dsps:hotpath, //dsps:coldpath, //dsps:allocs,
// //dsps:deterministic, //dsps:owned-goroutines, //dspslint:ignore).
//
// `dspslint -graph <func>` dumps the call-graph subtree reachable from
// the named function in Graphviz DOT form; `-baseline FILE` verifies the
// run against the committed suppression baseline and fails on drift.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"predstream/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut  = fs.Bool("json", false, "emit the full report as JSON")
		enable   = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable  = fs.String("disable", "", "comma-separated analyzers to skip")
		tests    = fs.Bool("tests", true, "include _test.go files and external test packages")
		summary  = fs.String("summary", "", "write the machine-readable baseline summary to this file")
		baseline = fs.String("baseline", "", "verify suppressions against this committed baseline; drift fails the run")
		timings  = fs.Bool("timings", false, "print per-stage wall time (load, callgraph, each analyzer)")
		graph    = fs.String("graph", "", "dump the call-graph subtree reachable from this function as Graphviz DOT and exit")
		list     = fs.Bool("list", false, "list analyzers and exit")
		chdir    = fs.String("C", "", "resolve package patterns relative to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	cfg := analysis.Config{
		Dir:          *chdir,
		Patterns:     fs.Args(),
		Enable:       splitList(*enable),
		Disable:      splitList(*disable),
		IncludeTests: *tests,
		JSON:         *jsonOut,
		SummaryPath:  *summary,
		BaselinePath: *baseline,
		Timings:      *timings,
		Stdout:       stdout,
		Stderr:       stderr,
	}
	if *graph != "" {
		dot, err := analysis.DumpDOT(cfg, *graph)
		if err != nil {
			fmt.Fprintf(stderr, "dspslint: %v\n", err)
			return 2
		}
		fmt.Fprint(stdout, dot)
		return 0
	}
	return analysis.Run(cfg)
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
