// Command dspslint is the repo's invariant linter: a stdlib-only static
// analyzer (go/parser + go/types with the source importer, no x/tools)
// that enforces the engine's determinism, hot-path, and concurrency rules.
//
// Usage:
//
//	dspslint [flags] [packages]
//
// Packages are directories or `dir/...` subtrees, default `./...`.
// Exit code 0 = clean, 1 = findings, 2 = load/type/usage failure.
//
// Run `dspslint -list` for the analyzers and the invariants they guard;
// see DESIGN.md "Static analysis" for the directive grammar
// (//dsps:hotpath, //dsps:deterministic, //dspslint:ignore).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"predstream/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("dspslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		jsonOut = fs.Bool("json", false, "emit the full report as JSON")
		enable  = fs.String("enable", "", "comma-separated analyzers to run (default: all)")
		disable = fs.String("disable", "", "comma-separated analyzers to skip")
		tests   = fs.Bool("tests", true, "include _test.go files and external test packages")
		summary = fs.String("summary", "", "write the machine-readable baseline summary to this file")
		list    = fs.Bool("list", false, "list analyzers and exit")
		chdir   = fs.String("C", "", "resolve package patterns relative to this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	return analysis.Run(analysis.Config{
		Dir:          *chdir,
		Patterns:     fs.Args(),
		Enable:       splitList(*enable),
		Disable:      splitList(*disable),
		IncludeTests: *tests,
		JSON:         *jsonOut,
		SummaryPath:  *summary,
		Stdout:       stdout,
		Stderr:       stderr,
	})
}

func splitList(s string) []string {
	if s == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
