package main

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"strings"
	"testing"
)

func TestRunHelp(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-h"}, &out, &errBuf)
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h returned %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errBuf.String(), "-app") {
		t.Fatalf("usage text missing from stderr:\n%s", errBuf.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errBuf bytes.Buffer
	if err := run([]string{"-no-such-flag"}, &out, &errBuf); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunUnknownApp(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-app", "nope"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "unknown app") {
		t.Fatalf("err = %v, want unknown app", err)
	}
}

func TestRunControlRequiresDynamic(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-control", "-duration", "1s"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "-dynamic") {
		t.Fatalf("err = %v, want -control requires -dynamic", err)
	}
}

// TestRunShortSession drives a tiny unpaced run end to end and checks the
// final tally line appears.
func TestRunShortSession(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-duration", "600ms", "-stats", "200ms", "-rate", "200", "-seed", "3",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "final: acked=") {
		t.Fatalf("no final tally in output:\n%s", out.String())
	}
}

// TestRunWritesProfiles drives a short run with -cpuprofile/-memprofile
// and checks both files appear, non-empty, after a clean shutdown.
func TestRunWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := dir + "/cpu.pprof"
	mem := dir + "/mem.pprof"
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-duration", "400ms", "-stats", "200ms", "-rate", "200", "-seed", "3",
		"-cpuprofile", cpu, "-memprofile", mem,
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errBuf.String())
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", p)
		}
	}
}

// TestRunCPUProfileBadPath reports a usable error instead of a partial run.
func TestRunCPUProfileBadPath(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{"-duration", "100ms", "-cpuprofile", t.TempDir() + "/no/such/dir/cpu.pprof"}, &out, &errBuf)
	if err == nil || !strings.Contains(err.Error(), "cpuprofile") {
		t.Fatalf("err = %v, want cpuprofile error", err)
	}
}

// TestRunDataPlaneKnobs checks the batching/acker flags reach the engine
// (a run with explicit knobs completes and makes progress).
func TestRunDataPlaneKnobs(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-duration", "500ms", "-stats", "200ms", "-rate", "300", "-seed", "7",
		"-acker-shards", "2", "-batch", "8", "-flush-interval", "2ms",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("run: %v\nstderr: %s", err, errBuf.String())
	}
	if !strings.Contains(out.String(), "final: acked=") {
		t.Fatalf("no final tally in output:\n%s", out.String())
	}
}

// TestRunChaosSession exercises the -chaos path: a short generated fault
// schedule must replay cleanly and report zero violations.
func TestRunChaosSession(t *testing.T) {
	var out, errBuf bytes.Buffer
	err := run([]string{
		"-chaos", "-chaos-seed", "11", "-duration", "1s", "-rate", "300",
	}, &out, &errBuf)
	if err != nil {
		t.Fatalf("chaos run: %v\nstdout: %s", err, out.String())
	}
	s := out.String()
	if !strings.Contains(s, "chaos: replaying") {
		t.Fatalf("chaos banner missing:\n%s", s)
	}
	if !strings.Contains(s, "seed=11") {
		t.Fatalf("report does not carry the seed:\n%s", s)
	}
}
