package main

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"predstream/internal/cluster"
	"predstream/internal/core"
	"predstream/internal/obs"
)

// coordinatorConfig carries the -coordinator mode flags out of run().
type coordinatorConfig struct {
	listen         string
	expect         int
	joinWait       time.Duration
	duration       time.Duration
	statsEvery     time.Duration
	heartbeatEvery time.Duration
	deadAfter      time.Duration
	metricsEvery   time.Duration
	control        bool
	controlPeriod  time.Duration
	obsAddr        string
	shutdown       bool
}

// runCoordinator is dspsim's fleet-control-plane mode: it listens for
// predworker processes, waits for the expected fleet to join, optionally
// runs one predictive control loop per worker over the wire, and prints
// fleet statistics until the duration elapses. See docs/CLUSTER.md for
// the two-terminal walkthrough.
func runCoordinator(cc coordinatorConfig, stdout, stderr io.Writer) error {
	var events *obs.Logger
	var sink *obs.MemorySink
	if cc.obsAddr != "" {
		sink = obs.NewMemorySink(1024)
		events = obs.NewLogger(sink, obs.LevelDebug)
	}
	ccfg := cluster.CoordinatorConfig{
		HeartbeatEvery: cc.heartbeatEvery,
		DeadAfter:      cc.deadAfter,
		MetricsEvery:   cc.metricsEvery,
	}
	if events != nil {
		ccfg.Events = events
	}
	coord, err := cluster.NewCoordinator(cc.listen, ccfg)
	if err != nil {
		return err
	}
	defer coord.Close()
	fmt.Fprintf(stdout, "coordinator listening on %s (expecting %d workers)\n",
		coord.Addr(), cc.expect)

	if cc.obsAddr != "" {
		reg := obs.NewRegistry()
		// The coordinator's merged fleet snapshot feeds the standard engine
		// metric families, worker-prefixed.
		reg.Register(obs.NewClusterCollector(coord))
		reg.Register(obs.NewRuntimeCollector())
		srv, err := obs.NewServer(cc.obsAddr, obs.ServerConfig{Registry: reg, Events: sink})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability listening on %s (/metrics /healthz /events /debug/pprof)\n", srv.Addr())
	}

	if cc.expect > 0 {
		if err := coord.WaitForWorkers(cc.expect, cc.joinWait); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "fleet complete: %d workers joined\n", cc.expect)
	}

	ctx, cancel := context.WithTimeout(context.Background(), cc.duration)
	defer cancel()
	if cc.control {
		if err := startRemoteControl(ctx, coord, cc, stdout, stderr); err != nil {
			return err
		}
	}

	ticker := time.NewTicker(cc.statsEvery)
	defer ticker.Stop()
	start := time.Now()
	prev := coord.Snapshot()
	for {
		select {
		case <-ctx.Done():
			final := coord.Snapshot()
			st := coord.Stats()
			fmt.Fprintf(stdout, "\nfinal: workers=%d acked=%d failed=%d joins=%d leaves=%d expiries=%d\n",
				st.Live, final.TotalAcked(), final.TotalFailed(), st.Joins, st.Leaves, st.Expiries)
			if cc.shutdown {
				coord.ShutdownWorkers()
				fmt.Fprintln(stdout, "sent shutdown to all workers")
			}
			return nil
		case <-ticker.C:
		}
		snap := coord.Snapshot()
		dt := snap.At.Sub(prev.At).Seconds()
		acked := float64(snap.TotalAcked()-prev.TotalAcked()) / dt
		prev = snap
		st := coord.Stats()
		fmt.Fprintf(stdout, "[%5.1fs] workers=%d acked/s=%7.0f joins=%d leaves=%d",
			time.Since(start).Seconds(), st.Live, acked, st.Joins, st.Leaves)
		workers := coord.Workers()
		sort.Slice(workers, func(i, j int) bool { return workers[i].Name < workers[j].Name })
		for _, w := range workers {
			fmt.Fprintf(stdout, "  %s(g%d,inflight=%d)", w.Name, w.Generation, w.InFlight)
		}
		fmt.Fprintln(stdout)
	}
}

// startRemoteControl launches one predictive control loop per joined
// worker, each steering that worker's controlled components through the
// wire (RemoteEngine + RemoteGrouping behind the same core interfaces the
// in-process loop uses).
func startRemoteControl(ctx context.Context, coord *cluster.Coordinator, cc coordinatorConfig, stdout, stderr io.Writer) error {
	for _, w := range coord.Workers() {
		if len(w.Controlled) == 0 {
			fmt.Fprintf(stdout, "control: worker %s exposes no controlled components, skipping\n", w.Name)
			continue
		}
		eng, err := coord.Engine(w.Name)
		if err != nil {
			return err
		}
		targets := make([]core.ControlTarget, 0, len(w.Controlled))
		for _, comp := range w.Controlled {
			targets = append(targets, core.ControlTarget{
				Component: comp,
				Grouping:  coord.Grouping(w.Name, comp),
			})
		}
		ctrl, err := core.NewController(eng, targets, core.Config{Policy: core.PolicyBypass})
		if err != nil {
			return err
		}
		name := w.Name
		go func() {
			if err := ctrl.Run(ctx, cc.controlPeriod); err != nil && ctx.Err() == nil {
				fmt.Fprintf(stderr, "control loop %s: %v\n", name, err)
			}
		}()
		fmt.Fprintf(stdout, "control: steering %s components %v every %v\n",
			name, w.Controlled, cc.controlPeriod)
	}
	return nil
}
