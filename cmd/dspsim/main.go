// Command dspsim runs one of the evaluation applications on the simulated
// cluster and prints live per-worker statistics, optionally with fault
// injection and the predictive control loop enabled — a minimal
// operational console for the engine.
//
// With -chaos it instead replays a seeded random fault schedule while the
// chaos harness checks engine invariants (tuple conservation, acker
// quiescence, monotone counters, bounded queues); any violation exits
// non-zero and prints the reproducing seed. This is what `make soak` and
// `make soak-short` run.
//
// Examples:
//
//	dspsim -app urlcount -duration 10s
//	dspsim -app urlcount -dynamic -control -fault-worker worker-1 -fault-at 4s -slowdown 8 -duration 15s
//	dspsim -app urlcount -chaos -chaos-seed 7 -duration 8s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"time"

	"predstream/internal/apps/contquery"
	"predstream/internal/apps/urlcount"
	"predstream/internal/chaos"
	"predstream/internal/console"
	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/obs"
	"predstream/internal/telemetry"
	"predstream/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "dspsim: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("dspsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	app := fs.String("app", "urlcount", "application: urlcount or contquery")
	duration := fs.Duration("duration", 10*time.Second, "run duration (chaos: fault-schedule horizon)")
	statsEvery := fs.Duration("stats", time.Second, "statistics print period")
	nodes := fs.Int("nodes", 2, "simulated machines")
	workers := fs.Int("workers", 4, "worker processes")
	dynamic := fs.Bool("dynamic", false, "use dynamic grouping on the controllable edge")
	control := fs.Bool("control", false, "run the predictive control loop (requires -dynamic)")
	controlPeriod := fs.Duration("control-period", 500*time.Millisecond, "control loop period")
	faultWorker := fs.String("fault-worker", "", "inject a fault into this worker")
	faultAt := fs.Duration("fault-at", 0, "when to inject the fault")
	slowdown := fs.Float64("slowdown", 8, "fault slowdown factor")
	rate := fs.Float64("rate", 0, "spout rate in tuples/s (0 = unpaced; non-constant shapes default to 500)")
	shapeName := fs.String("shape", "constant", "workload rate shape: constant, sinusoid (diurnal), or burst (flash crowd)")
	elastic := fs.Bool("elastic", false, "make stage parallelism live: with -control the planner emits scale actions; with -chaos the schedule carries scale-up/scale-down events")
	elasticMin := fs.Int("elastic-min", 1, "parallelism floor for elastic scale-downs")
	elasticMax := fs.Int("elastic-max", 8, "parallelism ceiling for elastic scale-ups")
	seed := fs.Int64("seed", 1, "random seed")
	httpAddr := fs.String("http", "", "serve the JSON console on this address (e.g. :8080)")
	chaosMode := fs.Bool("chaos", false, "replay a generated fault schedule under invariant checking instead of the stats loop")
	chaosSeed := fs.Int64("chaos-seed", 1, "chaos schedule seed (the reproducer token)")
	chaosEvents := fs.Int("chaos-events", 0, "chaos events over the horizon (0 = ~2 per second)")
	chaosVerbose := fs.Bool("chaos-verbose", false, "log each chaos event as it fires")
	ackerShards := fs.Int("acker-shards", 0, "acker shard count, rounded up to a power of two (0 = engine default)")
	batchSize := fs.Int("batch", 0, "data-plane micro-batch size in tuples, clamped to the queue size (0 = engine default)")
	flushInterval := fs.Duration("flush-interval", 0, "spout partial-batch flush deadline (0 = engine default)")
	ringSize := fs.Int("ring-size", 0, "SPSC ring capacity in batch slots; >0 enables the ring data plane (0 = channel plane)")
	waitStrategy := fs.String("wait-strategy", "", "ring-plane consumer wait strategy: hybrid, spin or park (default hybrid)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile to this file on shutdown")
	memprofile := fs.String("memprofile", "", "write a heap profile to this file on shutdown")
	obsAddr := fs.String("obs", "", "serve the observability endpoints (/metrics /healthz /trace.json /trace/chrome /events /debug/pprof) on this address (e.g. :9090)")
	traceSample := fs.Float64("trace-sample", 0, "fraction of anchored roots to trace (0 disables; chaos mode defaults to 0.05)")
	traceBuf := fs.Int("trace-buf", 0, "trace ring capacity in spans (0 = default 4096)")
	coordinator := fs.Bool("coordinator", false, "run as the fleet coordinator for predworker processes instead of an in-process engine (see docs/CLUSTER.md)")
	listen := fs.String("listen", "127.0.0.1:7070", "coordinator listen address")
	expect := fs.Int("expect", 0, "workers to wait for before starting the stats loop (0 = don't wait)")
	joinWait := fs.Duration("join-wait", 30*time.Second, "how long to wait for the expected workers")
	heartbeat := fs.Duration("heartbeat", 500*time.Millisecond, "coordinator: contracted worker heartbeat period")
	deadAfter := fs.Duration("dead-after", 2*time.Second, "coordinator: heartbeat silence after which a worker is declared dead")
	metricsEvery := fs.Duration("metrics-every", time.Second, "coordinator: contracted metric-snapshot period")
	shutdownWorkers := fs.Bool("shutdown-workers", false, "coordinator: command all workers to exit when the duration elapses")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordinator {
		return runCoordinator(coordinatorConfig{
			listen: *listen, expect: *expect, joinWait: *joinWait,
			duration: *duration, statsEvery: *statsEvery,
			heartbeatEvery: *heartbeat, deadAfter: *deadAfter, metricsEvery: *metricsEvery,
			control: *control, controlPeriod: *controlPeriod,
			obsAddr: *obsAddr, shutdown: *shutdownWorkers,
		}, stdout, stderr)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle allocations so the heap profile reflects live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "memprofile: %v\n", err)
			}
		}()
	}

	var shape workload.RateShape
	base := *rate
	if base <= 0 && *shapeName != "constant" {
		base = 500
	}
	switch *shapeName {
	case "constant":
		if base > 0 {
			shape = workload.ConstantRate{TPS: base}
		}
	case "sinusoid":
		shape = workload.SinusoidRate{Base: base, Amplitude: 0.8 * base, Period: *duration / 2}
	case "burst":
		shape = workload.BurstRate{Base: base, BurstX: 4, Period: *duration / 3, Duration: *duration / 10}
	default:
		return fmt.Errorf("unknown shape %q (want constant, sinusoid, or burst)", *shapeName)
	}
	var topo *dsps.Topology
	var dg *dsps.DynamicGrouping
	var stage string
	var err error
	switch *app {
	case "urlcount":
		topo, _, dg, err = urlcount.Build(urlcount.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			ParseCost: 5 * time.Millisecond, CountCost: -1,
		})
		stage = "parse"
	case "contquery":
		topo, _, dg, err = contquery.Build(contquery.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			QueryCost: 5 * time.Millisecond,
		})
		stage = "query"
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	if err != nil {
		return err
	}

	cfg := dsps.ClusterConfig{
		Nodes: *nodes, Seed: *seed,
		QueueSize: 64, MaxSpoutPending: 256, AckTimeout: 10 * time.Second,
		AckerShards: *ackerShards, BatchSize: *batchSize, FlushInterval: *flushInterval,
		RingSize: *ringSize, WaitStrategy: *waitStrategy,
	}
	if *chaosMode {
		// Dropped tuples only fail via the ack-timeout sweep, so the final
		// drain is bounded by it; and queues need headroom beyond the
		// in-flight cap so a single stalled worker cannot wedge the whole
		// pipeline through backpressure.
		cfg.AckTimeout = 2 * time.Second
		cfg.QueueSize = 2048
	}
	cfg.TraceSampleRate = *traceSample
	cfg.TraceBufferSize = *traceBuf
	if *chaosMode && cfg.TraceSampleRate == 0 {
		// A failing chaos seed dumps its sampled trace, so chaos runs keep
		// a light tracer on by default.
		cfg.TraceSampleRate = 0.05
	}
	var obsSink *obs.MemorySink
	var obsLogger *obs.Logger
	if *obsAddr != "" {
		obsSink = obs.NewMemorySink(1024)
		obsLogger = obs.NewLogger(obsSink, obs.LevelDebug)
		cfg.Events = obsLogger
	}
	cluster := dsps.NewCluster(cfg)
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: *workers}); err != nil {
		return err
	}
	defer cluster.Shutdown()
	fmt.Fprintf(stdout, "running %s on %d nodes / %d workers for %v (dynamic=%v control=%v chaos=%v)\n",
		*app, *nodes, *workers, *duration, *dynamic, *control, *chaosMode)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !*chaosMode {
		ctx, cancel = context.WithTimeout(context.Background(), *duration)
		defer cancel()
	}
	var ctrl *core.Controller
	if *control {
		if !*dynamic {
			return fmt.Errorf("-control requires -dynamic")
		}
		ctrlCfg := core.Config{Policy: core.PolicyBypass}
		if *elastic {
			ctrlCfg.Scale = &core.ScaleConfig{
				MinParallelism: *elasticMin,
				MaxParallelism: *elasticMax,
			}
		}
		if obsLogger != nil {
			ctrlCfg.Events = obsLogger
		}
		ctrl, err = core.NewController(cluster,
			[]core.ControlTarget{{Component: stage, Grouping: dg}},
			ctrlCfg)
		if err != nil {
			return err
		}
		go func() {
			if err := ctrl.Run(ctx, *controlPeriod); err != nil {
				fmt.Fprintf(stderr, "control loop: %v\n", err)
			}
		}()
	}
	if obsLogger != nil && dg != nil {
		lg, comp := obsLogger, stage
		dg.SetOnChange(func(ratios []float64) {
			lg.Info("dynamic ratios changed",
				obs.String("component", comp), obs.String("ratios", fmt.Sprint(ratios)))
		})
	}

	sampler := telemetry.NewSamplerFiltered(0, stage)
	var chaosMetrics *chaos.Metrics
	if *chaosMode {
		chaosMetrics = &chaos.Metrics{}
	}
	if *obsAddr != "" {
		reg := obs.NewRegistry()
		reg.Register(obs.NewClusterCollector(cluster))
		reg.Register(obs.NewRuntimeCollector())
		if ctrl != nil {
			reg.Register(obs.NewControllerCollector(ctrl))
		}
		if chaosMetrics != nil {
			reg.Register(obs.NewChaosCollector(chaosMetrics))
		} else {
			reg.Register(obs.NewSamplerCollector(sampler))
		}
		srv, err := obs.NewServer(*obsAddr, obs.ServerConfig{Registry: reg, Trace: cluster.Trace(), Events: obsSink})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability listening on %s (/metrics /healthz /trace.json /trace/chrome /events /debug/pprof)\n", srv.Addr())
	}

	if *chaosMode {
		cc := chaosConfig{
			seed: *chaosSeed, events: *chaosEvents, horizon: *duration,
			workers: *workers, stage: stage, controlPeriod: *controlPeriod,
			verbose: *chaosVerbose, metrics: chaosMetrics, elastic: *elastic,
		}
		if obsLogger != nil {
			cc.sink = obsLogger
		}
		return runChaos(cluster, topo, dg, ctrl, cc, stdout)
	}

	if *httpAddr != "" {
		srv, err := console.New(cluster, sampler, ctrl)
		if err != nil {
			return err
		}
		go func() {
			fmt.Fprintf(stdout, "console listening on %s (/healthz /snapshot /workers /control)\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, srv); err != nil {
				fmt.Fprintf(stderr, "console: %v\n", err)
			}
		}()
	}
	start := time.Now()
	faulted := false
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	prev := cluster.Snapshot()
	sampler.Sample(prev)
	for {
		select {
		case <-ctx.Done():
			final := cluster.Snapshot()
			fmt.Fprintf(stdout, "\nfinal: acked=%d failed=%d inflight=%d\n",
				final.TotalAcked(), final.TotalFailed(), cluster.InFlight())
			return nil
		case <-ticker.C:
		}
		if !faulted && *faultWorker != "" && time.Since(start) >= *faultAt {
			if err := cluster.InjectFault(*faultWorker, dsps.Fault{Slowdown: *slowdown}); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "-- injected %.0fx slowdown on %s --\n", *slowdown, *faultWorker)
			faulted = true
		}
		snap := cluster.Snapshot()
		sampler.Sample(snap)
		dt := snap.At.Sub(prev.At).Seconds()
		acked := float64(snap.TotalAcked()-prev.TotalAcked()) / dt
		failed := float64(snap.TotalFailed()-prev.TotalFailed()) / dt
		prev = snap
		fmt.Fprintf(stdout, "[%5.1fs] acked/s=%7.0f failed/s=%5.0f inflight=%4d",
			time.Since(start).Seconds(), acked, failed, cluster.InFlight())
		ids := sampler.Workers()
		sort.Strings(ids)
		for _, id := range ids {
			wins := sampler.Series(id)
			if len(wins) == 0 {
				continue
			}
			w := wins[len(wins)-1]
			marker := ""
			if w.Misbehaving {
				marker = "!"
			}
			fmt.Fprintf(stdout, "  %s%s=%.1fms", id, marker, w.AvgExecMs)
		}
		fmt.Fprintln(stdout)
	}
}

type chaosConfig struct {
	seed          int64
	events        int
	horizon       time.Duration
	workers       int
	stage         string
	controlPeriod time.Duration
	verbose       bool
	metrics       *chaos.Metrics
	sink          dsps.EventSink
	elastic       bool
}

// runChaos generates a seeded fault schedule, replays it under invariant
// checking, prints the report, and returns an error carrying the
// reproducing seed if any invariant broke.
func runChaos(cluster *dsps.Cluster, topo *dsps.Topology, dg *dsps.DynamicGrouping, ctrl *core.Controller, cc chaosConfig, stdout io.Writer) error {
	events := cc.events
	if events <= 0 {
		events = int(2 * cc.horizon / time.Second)
		if events < 6 {
			events = 6
		}
	}
	gen := chaos.GenConfig{
		Events:  events,
		Horizon: cc.horizon,
		Workers: cc.workers,
		Stall:   true, Checkpoint: true, Pause: true,
	}
	if cc.elastic {
		gen.Scale = true
		gen.ScaleComponents = []string{cc.stage}
	}
	script := chaos.Generate(cc.seed, gen)
	opts := chaos.Options{SpoutComponents: topo.Spouts(), Metrics: cc.metrics, Events: cc.sink}
	if cc.verbose {
		opts.Log = stdout
	}
	if ctrl != nil {
		// The controller needs several periods of post-stall windows before
		// the stall channel flags a worker; give it generous latency.
		latency := 10 * cc.controlPeriod
		if latency < 5*time.Second {
			latency = 5 * time.Second
		}
		opts.Controlled = []chaos.ControlledEdge{{
			Component: cc.stage, Grouping: dg, DetectionLatency: latency,
		}}
	}
	fmt.Fprintf(stdout, "chaos: replaying %d events over %v (seed %d)\n", len(script.Events), cc.horizon, cc.seed)
	rep, err := chaos.Run(cluster, script, opts)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, rep)
	if cc.elastic {
		for _, sc := range cluster.Snapshot().Scale {
			fmt.Fprintf(stdout, "elastic: topology=%s ups=%d downs=%d route_epoch=%d retired=%d\n",
				sc.Topology, sc.Ups, sc.Downs, sc.RouteEpoch, sc.Retired)
		}
	}
	if rerr := rep.Err(); rerr != nil {
		// A failing seed dumps its sampled tuple trace so the violation can
		// be inspected offline (or replayed via docs/OBSERVABILITY.md).
		if tr := cluster.Trace(); tr != nil {
			path := fmt.Sprintf("chaos_trace_%d.json", cc.seed)
			if f, ferr := os.Create(path); ferr == nil {
				obs.WriteTraceJSON(f, tr.Spans())
				f.Close()
				fmt.Fprintf(stdout, "chaos: wrote sampled trace of failing seed to %s (%d spans)\n", path, tr.Len())
			} else {
				fmt.Fprintf(stdout, "chaos: could not write trace: %v\n", ferr)
			}
		}
		return rerr
	}
	return nil
}
