// Command dspsim runs one of the evaluation applications on the simulated
// cluster and prints live per-worker statistics, optionally with fault
// injection and the predictive control loop enabled — a minimal
// operational console for the engine.
//
// Examples:
//
//	dspsim -app urlcount -duration 10s
//	dspsim -app urlcount -dynamic -control -fault-worker worker-1 -fault-at 4s -slowdown 8 -duration 15s
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sort"
	"time"

	"predstream/internal/apps/contquery"
	"predstream/internal/apps/urlcount"
	"predstream/internal/console"
	"predstream/internal/core"
	"predstream/internal/dsps"
	"predstream/internal/telemetry"
	"predstream/internal/workload"
)

func main() {
	app := flag.String("app", "urlcount", "application: urlcount or contquery")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	statsEvery := flag.Duration("stats", time.Second, "statistics print period")
	nodes := flag.Int("nodes", 2, "simulated machines")
	workers := flag.Int("workers", 4, "worker processes")
	dynamic := flag.Bool("dynamic", false, "use dynamic grouping on the controllable edge")
	control := flag.Bool("control", false, "run the predictive control loop (requires -dynamic)")
	controlPeriod := flag.Duration("control-period", 500*time.Millisecond, "control loop period")
	faultWorker := flag.String("fault-worker", "", "inject a fault into this worker")
	faultAt := flag.Duration("fault-at", 0, "when to inject the fault")
	slowdown := flag.Float64("slowdown", 8, "fault slowdown factor")
	rate := flag.Float64("rate", 0, "spout rate in tuples/s (0 = unpaced)")
	seed := flag.Int64("seed", 1, "random seed")
	httpAddr := flag.String("http", "", "serve the JSON console on this address (e.g. :8080)")
	flag.Parse()

	var shape workload.RateShape
	if *rate > 0 {
		shape = workload.ConstantRate{TPS: *rate}
	}
	var topo *dsps.Topology
	var dg *dsps.DynamicGrouping
	var stage string
	var err error
	switch *app {
	case "urlcount":
		topo, _, dg, err = urlcount.Build(urlcount.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			ParseCost: 5 * time.Millisecond, CountCost: -1,
		})
		stage = "parse"
	case "contquery":
		topo, _, dg, err = contquery.Build(contquery.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			QueryCost: 5 * time.Millisecond,
		})
		stage = "query"
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	if err != nil {
		fatal(err)
	}

	cluster := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: *nodes, Seed: *seed,
		QueueSize: 64, MaxSpoutPending: 256, AckTimeout: 10 * time.Second,
	})
	if err := cluster.Submit(topo, dsps.SubmitConfig{Workers: *workers}); err != nil {
		fatal(err)
	}
	defer cluster.Shutdown()
	fmt.Printf("running %s on %d nodes / %d workers for %v (dynamic=%v control=%v)\n",
		*app, *nodes, *workers, *duration, *dynamic, *control)

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var ctrl *core.Controller
	if *control {
		if !*dynamic {
			fatal(fmt.Errorf("-control requires -dynamic"))
		}
		ctrl, err = core.NewController(cluster,
			[]core.ControlTarget{{Component: stage, Grouping: dg}},
			core.Config{Policy: core.PolicyBypass})
		if err != nil {
			fatal(err)
		}
		go func() {
			if err := ctrl.Run(ctx, *controlPeriod); err != nil {
				fmt.Fprintf(os.Stderr, "control loop: %v\n", err)
			}
		}()
	}

	sampler := telemetry.NewSamplerFiltered(0, stage)
	if *httpAddr != "" {
		srv, err := console.New(cluster, sampler, ctrl)
		if err != nil {
			fatal(err)
		}
		go func() {
			fmt.Printf("console listening on %s (/healthz /snapshot /workers /control)\n", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, srv); err != nil {
				fmt.Fprintf(os.Stderr, "console: %v\n", err)
			}
		}()
	}
	start := time.Now()
	faulted := false
	ticker := time.NewTicker(*statsEvery)
	defer ticker.Stop()
	prev := cluster.Snapshot()
	sampler.Sample(prev)
	for {
		select {
		case <-ctx.Done():
			final := cluster.Snapshot()
			fmt.Printf("\nfinal: acked=%d failed=%d inflight=%d\n",
				final.TotalAcked(), final.TotalFailed(), cluster.InFlight())
			return
		case <-ticker.C:
		}
		if !faulted && *faultWorker != "" && time.Since(start) >= *faultAt {
			if err := cluster.InjectFault(*faultWorker, dsps.Fault{Slowdown: *slowdown}); err != nil {
				fatal(err)
			}
			fmt.Printf("-- injected %.0fx slowdown on %s --\n", *slowdown, *faultWorker)
			faulted = true
		}
		snap := cluster.Snapshot()
		sampler.Sample(snap)
		dt := snap.At.Sub(prev.At).Seconds()
		acked := float64(snap.TotalAcked()-prev.TotalAcked()) / dt
		failed := float64(snap.TotalFailed()-prev.TotalFailed()) / dt
		prev = snap
		fmt.Printf("[%5.1fs] acked/s=%7.0f failed/s=%5.0f inflight=%4d",
			time.Since(start).Seconds(), acked, failed, cluster.InFlight())
		ids := sampler.Workers()
		sort.Strings(ids)
		for _, id := range ids {
			wins := sampler.Series(id)
			if len(wins) == 0 {
				continue
			}
			w := wins[len(wins)-1]
			marker := ""
			if w.Misbehaving {
				marker = "!"
			}
			fmt.Printf("  %s%s=%.1fms", id, marker, w.AvgExecMs)
		}
		fmt.Println()
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "dspsim: %v\n", err)
	os.Exit(1)
}
