// Command predictd is the prediction server: it loads a fitted DRNN
// checkpoint (or trains a small model on the synthetic trace for demos)
// and serves predictions over HTTP/JSON and an optional raw-TCP binary
// protocol. Concurrent requests are coalesced into micro-batches for the
// batched GEMM forward path, admission is bounded with 429 shedding, and
// p50/p99 latency SLOs are exported on the observability /metrics
// endpoint as the predstream_serve_* families.
//
// Quickstart:
//
//	predict -save model.gob                # train a checkpoint
//	predictd -model model.gob -obs :9090   # serve it
//	curl -d '{"window": [[...], ...]}' localhost:8420/predict
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predstream/internal/drnn"
	"predstream/internal/obs"
	"predstream/internal/serve"
	"predstream/internal/telemetry"
	"predstream/internal/trace"
	"predstream/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		if errors.Is(err, flag.ErrHelp) {
			return
		}
		fmt.Fprintf(os.Stderr, "predictd: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("predictd", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8420", "HTTP address serving POST /predict and GET /healthz")
	tcpAddr := fs.String("tcp-addr", "", "also serve the raw-TCP binary protocol on this address")
	obsAddr := fs.String("obs", "", "serve /metrics, /healthz and /debug/pprof on this address (e.g. :9090)")
	modelPath := fs.String("model", "", "DRNN checkpoint to serve (from predict -save); empty trains a demo model on the synthetic trace")
	quantized := fs.Bool("quantized", false, "serve int8 fixed-point inference instead of float64")
	maxBatch := fs.Int("batch", 16, "largest micro-batch per forward pass")
	flush := fs.Duration("flush", 2*time.Millisecond, "max wait before flushing a partial micro-batch")
	queue := fs.Int("queue", 256, "admission queue depth; overflow is shed with HTTP 429")
	duration := fs.Duration("duration", 0, "exit after this long (0 = run until SIGINT/SIGTERM)")
	steps := fs.Int("steps", 240, "synthetic training trace length in windows (demo model only)")
	epochs := fs.Int("epochs", 10, "training epochs for the demo model")
	seed := fs.Int64("seed", 1, "random seed for the demo model")
	if err := fs.Parse(args); err != nil {
		return err
	}

	p, err := loadOrTrain(stdout, *modelPath, *steps, *epochs, *seed)
	if err != nil {
		return err
	}
	inf, err := p.Inference(*quantized)
	if err != nil {
		return err
	}
	mode := "float64"
	if *quantized {
		mode = "int8"
	}
	fmt.Fprintf(stdout, "model ready: window %d, %d features, %s forward path\n",
		inf.Window(), inf.Features(), mode)

	var reg *obs.Registry
	if *obsAddr != "" {
		reg = obs.NewRegistry()
		reg.Register(obs.NewRuntimeCollector())
	}
	metrics := serve.NewMetrics(reg)
	coal := serve.NewCoalescer(inf, serve.Options{
		MaxBatch:      *maxBatch,
		FlushInterval: *flush,
		QueueDepth:    *queue,
	}, metrics)
	defer coal.Close()
	if reg != nil {
		reg.Register(coal)
		srv, err := obs.NewServer(*obsAddr, obs.ServerConfig{Registry: reg})
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(stdout, "observability listening on %s (/metrics /debug/pprof)\n", srv.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: serve.Handler(coal)}
	httpErr := make(chan error, 1)
	go func() { httpErr <- httpSrv.Serve(ln) }()
	defer httpSrv.Close()
	fmt.Fprintf(stdout, "http listening on %s (POST /predict)\n", ln.Addr())

	if *tcpAddr != "" {
		tln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			return err
		}
		tcpSrv := serve.ServeTCP(tln, coal)
		defer tcpSrv.Close()
		fmt.Fprintf(stdout, "tcp listening on %s (binary protocol)\n", tcpSrv.Addr())
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	defer signal.Stop(stop)
	var deadline <-chan time.Time
	if *duration > 0 {
		t := time.NewTimer(*duration)
		defer t.Stop()
		deadline = t.C
	}
	select {
	case sig := <-stop:
		fmt.Fprintf(stdout, "received %s, shutting down\n", sig)
	case <-deadline:
		fmt.Fprintln(stdout, "duration elapsed, shutting down")
	case err := <-httpErr:
		return fmt.Errorf("http server: %w", err)
	}
	return nil
}

// loadOrTrain loads the checkpoint at path, or fits a small demo model on
// the deterministic synthetic trace when path is empty.
func loadOrTrain(stdout io.Writer, path string, steps, epochs int, seed int64) (*drnn.Predictor, error) {
	if path != "" {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		p, err := drnn.Load(f)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(stdout, "loaded checkpoint %s (%d parameters)\n", path, p.NumParams())
		return p, nil
	}
	fmt.Fprintf(stdout, "no -model given; training a demo model on the synthetic trace (%d windows, %d epochs)\n", steps, epochs)
	traces := trace.Synthetic(trace.SyntheticConfig{
		Workers: 4, Nodes: 2, Cores: 4, BaseMs: 1.0,
		Shape: workload.SinusoidRate{Base: 900, Amplitude: 500, Period: 50 * time.Second},
		Steps: steps, Seed: seed,
	})
	series := telemetry.ToSeries(traces["worker-0"], telemetry.TargetProcTime,
		telemetry.FeatureConfig{Interference: true})
	p := drnn.New(drnn.Config{Epochs: epochs, Seed: seed})
	if err := p.Fit(series); err != nil {
		return nil, err
	}
	return p, nil
}
