package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"predstream/internal/drnn"
	"predstream/internal/serve"
	"predstream/internal/telemetry"
	"predstream/internal/trace"
	"predstream/internal/workload"
)

// syncBuffer lets the test read run()'s output while it is still running.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestRunHelp(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-h"}, &out, &errOut); err != flag.ErrHelp {
		t.Fatalf("-h error = %v, want flag.ErrHelp", err)
	}
	if !strings.Contains(errOut.String(), "-quantized") {
		t.Fatal("usage text missing -quantized flag")
	}
}

func TestRunBadFlag(t *testing.T) {
	var out, errOut bytes.Buffer
	if err := run([]string{"-definitely-not-a-flag"}, &out, &errOut); err == nil {
		t.Fatal("expected flag error")
	}
}

func TestRunMissingModel(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-model", filepath.Join(t.TempDir(), "nope.gob")}, &out, &errOut)
	if err == nil {
		t.Fatal("expected missing-checkpoint error")
	}
}

// saveCheckpoint trains the smallest usable model and writes it to disk.
func saveCheckpoint(t *testing.T) string {
	t.Helper()
	traces := trace.Synthetic(trace.SyntheticConfig{
		Workers: 2, Nodes: 1, Cores: 4, BaseMs: 1.0,
		Shape: workload.SinusoidRate{Base: 900, Amplitude: 500, Period: 50 * time.Second},
		Steps: 120, Seed: 1,
	})
	series := telemetry.ToSeries(traces["worker-0"], telemetry.TargetProcTime,
		telemetry.FeatureConfig{Interference: true})
	p := drnn.New(drnn.Config{Hidden: []int{8}, DenseHidden: []int{4}, Epochs: 2, Seed: 1})
	if err := p.Fit(series); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.gob")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return path
}

var addrRe = regexp.MustCompile(`(\w+) listening on (\S+)`)

// waitAddrs polls the output buffer for "<name> listening on <addr>"
// lines until every wanted name appeared.
func waitAddrs(t *testing.T, out *syncBuffer, names ...string) map[string]string {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		got := map[string]string{}
		for _, m := range addrRe.FindAllStringSubmatch(out.String(), -1) {
			got[m[1]] = m[2]
		}
		all := true
		for _, n := range names {
			if got[n] == "" {
				all = false
			}
		}
		if all {
			return got
		}
		if time.Now().After(deadline) {
			t.Fatalf("addresses %v never appeared; output:\n%s", names, out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRunServesHTTPAndTCP boots the daemon on ephemeral ports with a real
// checkpoint and exercises /predict, /healthz, the TCP protocol, and the
// /metrics families end to end.
func TestRunServesHTTPAndTCP(t *testing.T) {
	model := saveCheckpoint(t)
	var out syncBuffer
	var errOut bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run([]string{
			"-model", model,
			"-addr", "127.0.0.1:0",
			"-tcp-addr", "127.0.0.1:0",
			"-obs", "127.0.0.1:0",
			"-quantized",
			"-duration", "60s", // safety net; the test exits via SIGINT below
		}, &out, &errOut)
	}()
	addrs := waitAddrs(t, &out, "http", "tcp", "observability")

	window := make([][]float64, 10)
	for i := range window {
		window[i] = make([]float64, 9)
	}
	payload, _ := json.Marshal(serve.PredictRequest{Window: window})
	resp, err := http.Post("http://"+addrs["http"]+"/predict", "application/json", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}

	conn, err := net.Dial("tcp", addrs["tcp"])
	if err != nil {
		t.Fatal(err)
	}
	frame, err := serve.EncodeWireFrame(nil, window)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(frame); err != nil {
		t.Fatal(err)
	}
	status, pred, err := serve.ReadWireResponse(conn)
	conn.Close()
	if err != nil || status != serve.StatusOK {
		t.Fatalf("tcp response (%d, %v, %v)", status, pred, err)
	}
	if pred != pr.Prediction {
		t.Fatalf("tcp prediction %v != http prediction %v for the same window", pred, pr.Prediction)
	}

	mresp, err := http.Get("http://" + addrs["observability"] + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"predstream_serve_requests_total",
		"predstream_serve_shed_total",
		"predstream_serve_batches_total",
		"predstream_serve_latency_seconds_bucket",
		"predstream_serve_latency_quantile_seconds{quantile=\"0.99\"}",
		"predstream_serve_queue_depth",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %s", want)
		}
	}

	// SIGINT triggers the graceful-shutdown path; run's handler is the
	// only one registered, so the test process survives the signal.
	if err := syscall.Kill(os.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("run: %v (stderr: %s)", err, errOut.String())
	}
	if !strings.Contains(out.String(), "shutting down") {
		t.Fatalf("missing shutdown line in output:\n%s", out.String())
	}
}
