// Command predworker runs one worker process of the distributed runtime:
// it hosts a full engine instance (one evaluation application on the
// simulated cluster), joins a coordinator over the versioned TCP wire
// protocol (docs/WIRE_PROTOCOL.md), ships heartbeats and metric
// snapshots, and executes remote control commands — ratio updates, scale
// actions, fault injection, drains, and invariant checks.
//
// The process serves until the coordinator commands shutdown, the
// connection-level handshake permanently fails (version mismatch), or it
// receives SIGINT/SIGTERM, which triggers a clean Goodbye. A lost
// coordinator is retried with exponential backoff, rejoining under the
// same name with a bumped generation.
//
// Examples:
//
//	predworker -coordinator 127.0.0.1:7070 -name w1 -app urlcount -dynamic
//	predworker -coordinator 127.0.0.1:7070 -name w2 -app contquery -dynamic -rate 500
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"predstream/internal/apps/contquery"
	"predstream/internal/apps/urlcount"
	"predstream/internal/cluster"
	"predstream/internal/dsps"
	"predstream/internal/workload"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	switch {
	case err == nil, errors.Is(err, flag.ErrHelp), errors.Is(err, cluster.ErrShutdown):
		return
	default:
		fmt.Fprintf(os.Stderr, "predworker: %v\n", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("predworker", flag.ContinueOnError)
	fs.SetOutput(stderr)
	coordAddr := fs.String("coordinator", "", "coordinator address (host:port); required")
	name := fs.String("name", "", "stable worker name; required (rejoins bump the generation)")
	app := fs.String("app", "urlcount", "application: urlcount or contquery")
	dynamic := fs.Bool("dynamic", true, "use dynamic grouping on the controllable edge (lets the coordinator steer ratios)")
	nodes := fs.Int("nodes", 2, "simulated machines inside this worker's engine")
	workers := fs.Int("workers", 4, "engine-level worker processes (simulated)")
	seed := fs.Int64("seed", 1, "random seed")
	rate := fs.Float64("rate", 0, "spout rate in tuples/s (0 = unpaced)")
	queueSize := fs.Int("queue", 64, "per-executor input queue bound")
	batchSize := fs.Int("batch", 0, "data-plane micro-batch size in tuples (0 = engine default)")
	ringSize := fs.Int("ring-size", 0, "SPSC ring capacity in batch slots; >0 enables the ring data plane")
	ackTimeout := fs.Duration("ack-timeout", 10*time.Second, "tuple-tree ack timeout")
	dialTimeout := fs.Duration("dial-timeout", 2*time.Second, "one connection attempt bound")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *coordAddr == "" {
		return errors.New("-coordinator is required")
	}
	if *name == "" {
		return errors.New("-name is required")
	}

	var shape workload.RateShape
	if *rate > 0 {
		shape = workload.ConstantRate{TPS: *rate}
	}
	var topo *dsps.Topology
	var dg *dsps.DynamicGrouping
	var stage string
	var err error
	switch *app {
	case "urlcount":
		topo, _, dg, err = urlcount.Build(urlcount.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			ParseCost: 5 * time.Millisecond, CountCost: -1,
		})
		stage = "parse"
	case "contquery":
		topo, _, dg, err = contquery.Build(contquery.Config{
			Dynamic: *dynamic, Shape: shape, Seed: *seed,
			QueryCost: 5 * time.Millisecond,
		})
		stage = "query"
	default:
		err = fmt.Errorf("unknown app %q", *app)
	}
	if err != nil {
		return err
	}

	eng := dsps.NewCluster(dsps.ClusterConfig{
		Nodes: *nodes, Seed: *seed,
		QueueSize: *queueSize, MaxSpoutPending: 256,
		AckTimeout: *ackTimeout, BatchSize: *batchSize, RingSize: *ringSize,
	})
	if err := eng.Submit(topo, dsps.SubmitConfig{Workers: *workers}); err != nil {
		return err
	}
	defer eng.Shutdown()

	groupings := map[string]*dsps.DynamicGrouping{}
	if dg != nil {
		groupings[stage] = dg
	}
	w, err := cluster.NewWorker(cluster.WorkerConfig{
		Name:        *name,
		Coordinator: *coordAddr,
		Engine:      eng,
		Topology:    topo.Name,
		Groupings:   groupings,
		Spouts:      topo.Spouts(),
		DialTimeout: *dialTimeout,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "worker %q (%s, dynamic=%v) joining coordinator %s\n",
		*name, *app, *dynamic, *coordAddr)
	err = w.Run(ctx)
	if errors.Is(err, cluster.ErrShutdown) {
		fmt.Fprintf(stdout, "worker %q: shut down by coordinator\n", *name)
		return err
	}
	if err == nil {
		fmt.Fprintf(stdout, "worker %q: stopped\n", *name)
	}
	return err
}
