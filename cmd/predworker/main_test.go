package main

import (
	"io"
	"strings"
	"testing"
	"time"

	"predstream/internal/cluster"
)

func TestRunFlagValidation(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"missing coordinator", []string{"-name", "w1"}, "-coordinator is required"},
		{"missing name", []string{"-coordinator", "127.0.0.1:1"}, "-name is required"},
		{"unknown app", []string{"-coordinator", "127.0.0.1:1", "-name", "w1", "-app", "nope"}, `unknown app "nope"`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := run(c.args, io.Discard, io.Discard)
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("run(%v) = %v, want error containing %q", c.args, err, c.want)
			}
		})
	}
}

// TestRunJoinsAndObeysShutdown drives the real binary path end to end in
// process: a coordinator on a loopback port, run() with both app
// topologies, shutdown over the wire, and the exit contract (ErrShutdown,
// which main() maps to exit code 0).
func TestRunJoinsAndObeysShutdown(t *testing.T) {
	coord, err := cluster.NewCoordinator("127.0.0.1:0", cluster.CoordinatorConfig{
		HeartbeatEvery: 20 * time.Millisecond,
		DeadAfter:      200 * time.Millisecond,
		MetricsEvery:   50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	done := make(chan error, 2)
	var outs [2]strings.Builder
	for i, app := range []string{"urlcount", "contquery"} {
		i, app := i, app
		go func() {
			done <- run([]string{
				"-coordinator", coord.Addr().String(), "-name", "t-" + app, "-app", app,
			}, &outs[i], io.Discard)
		}()
	}
	if err := coord.WaitForWorkers(2, 10*time.Second); err != nil {
		t.Fatalf("workers never joined: %v", err)
	}
	for _, name := range []string{"t-urlcount", "t-contquery"} {
		info, ok := coord.Worker(name)
		if !ok {
			t.Fatalf("worker %q not in membership", name)
		}
		if len(info.Controlled) == 0 {
			t.Errorf("worker %q declared no controlled components; -dynamic should default on", name)
		}
	}
	coord.ShutdownWorkers()
	for i := 0; i < 2; i++ {
		select {
		case err := <-done:
			if err != cluster.ErrShutdown {
				t.Fatalf("run() = %v, want ErrShutdown", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("run() did not return after wire shutdown")
		}
	}
	for i := range outs {
		if !strings.Contains(outs[i].String(), "shut down by coordinator") {
			t.Errorf("worker %d output missing shutdown notice: %q", i, outs[i].String())
		}
	}
}
